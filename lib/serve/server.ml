(* Inference server: admission-controlled dynamic batcher in front of a
   worker pool of compute domains.

   A request is one image [c; h; w]; the batcher coalesces up to
   [max_batch] of them (waiting at most [max_delay] for stragglers) into
   one [n; c; h; w] batch, the worker runs the model once, and each
   request gets its own logits row back.  Because every model op is
   per-sample independent, the row a request receives is bit-identical to
   what a batch-of-1 run would have produced — the qcheck property in
   test/test_serve.ml pins this.

   Worker-pool / domain-pool interaction: with [workers = 1] the single
   compute worker may freely use the global [Parallel] domain pool inside
   kernels (intra-batch parallelism).  With [workers > 1] each batch runs
   under [Parallel.sequential] instead — the pool executes one job at a
   time, so concurrent workers must not submit to it; they provide
   inter-batch parallelism themselves.  Either way results are
   bit-identical (PR 1's seq/par equality).

   Nothing here raises across the API: overload, expired deadlines,
   malformed inputs, post-shutdown submits and even exceptions escaping
   the model all turn into typed per-request outcomes. *)

module Tensor = Twq_tensor.Tensor
module Parallel = Twq_util.Parallel
module Mclock = Twq_util.Mclock

type config = {
  max_batch : int;
  max_delay : float; (* seconds the batch window stays open *)
  capacity : int; (* bound on the request queue; excess sheds *)
  workers : int; (* compute worker domains *)
  default_deadline : float option; (* relative seconds, per request *)
}

let default_config =
  {
    max_batch = 8;
    max_delay = 0.002;
    capacity = 64;
    workers = 1;
    default_deadline = None;
  }

type outcome =
  | Output of Tensor.t
  | Rejected_overload
  | Deadline_expired
  | Rejected_invalid of string
  | Rejected_closed
  | Failed of string

let outcome_label = function
  | Output _ -> "output"
  | Rejected_overload -> "rejected-overload"
  | Deadline_expired -> "deadline-expired"
  | Rejected_invalid _ -> "rejected-invalid"
  | Rejected_closed -> "rejected-closed"
  | Failed _ -> "failed"

type ticket = {
  input : Tensor.t;
  submitted : float;
  deadline : float option; (* absolute *)
  cell_mutex : Mutex.t;
  cell_cond : Condition.t;
  mutable cell : outcome option;
  mutable dispatched : float; (* 0. until picked into a batch *)
  mutable completed_at : float; (* 0. until completed *)
}

type t = {
  config : config;
  resolve : unit -> Model.t;
  input_dims : int array; (* [| c; h; w |] *)
  numel : int;
  batcher : ticket Batcher.t;
  metrics : Metrics.t;
  mutable warmed : Model.t option; (* last model whose plans were warmed *)
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
  stop_mutex : Mutex.t;
}

(* All ticket timestamps are differences of monotonic readings; a wall
   clock stepped by NTP mid-request would corrupt deadlines and the
   latency histograms. *)
let now = Mclock.now

let complete t ticket outcome =
  (match outcome with
  | Output _ ->
      Metrics.Counter.incr t.metrics.Metrics.completed;
      Metrics.Histogram.observe t.metrics.Metrics.total_latency
        (now () -. ticket.submitted)
  | Rejected_overload -> Metrics.Counter.incr t.metrics.Metrics.rejected_overload
  | Deadline_expired -> Metrics.Counter.incr t.metrics.Metrics.deadline_expired
  | Rejected_invalid _ -> Metrics.Counter.incr t.metrics.Metrics.rejected_invalid
  | Rejected_closed -> Metrics.Counter.incr t.metrics.Metrics.rejected_closed
  | Failed _ -> Metrics.Counter.incr t.metrics.Metrics.failed);
  ticket.completed_at <- now ();
  Mutex.lock ticket.cell_mutex;
  if ticket.cell = None then ticket.cell <- Some outcome;
  Condition.broadcast ticket.cell_cond;
  Mutex.unlock ticket.cell_mutex

let run_batch t tickets ~opened =
  let dispatch = now () in
  let m = t.metrics in
  List.iter
    (fun ticket ->
      ticket.dispatched <- dispatch;
      Metrics.Histogram.observe m.Metrics.queue_wait
        (dispatch -. ticket.submitted))
    tickets;
  Metrics.Gauge.set m.Metrics.queue_depth (Batcher.length t.batcher);
  (* Split expired requests out before paying for their compute. *)
  let live, dead =
    List.partition
      (fun ticket ->
        match ticket.deadline with None -> true | Some d -> dispatch <= d)
      tickets
  in
  List.iter (fun ticket -> complete t ticket Deadline_expired) dead;
  if live <> [] then begin
    let n = List.length live in
    Metrics.Gauge.incr m.Metrics.in_flight;
    Metrics.Counter.incr m.Metrics.batches;
    Metrics.Counter.add m.Metrics.images n;
    Metrics.Histogram.observe m.Metrics.batch_size (float_of_int n *. 1e-9);
    Metrics.Histogram.observe m.Metrics.batch_assembly (dispatch -. opened);
    match
      let xb =
        Tensor.zeros
          [| n; t.input_dims.(0); t.input_dims.(1); t.input_dims.(2) |]
      in
      List.iteri
        (fun i ticket ->
          Array.blit ticket.input.Tensor.data 0 xb.Tensor.data (i * t.numel)
            t.numel)
        live;
      let model = t.resolve () in
      (* A hot-swapped artifact arrives with packed weights but no
         compiled plans yet; warm every servable batch size once so
         only the first post-swap batch pays the (cheap) planning. *)
      (match t.warmed with
      | Some m when m == model -> ()
      | _ ->
          Model.warm model ~input_dims:t.input_dims
            ~batch_sizes:(List.init t.config.max_batch (fun i -> i + 1));
          t.warmed <- Some model);
      (* Allocation accounting runs on this worker domain.
         [Gc.minor_words] is the per-domain allocation clock —
         [Gc.quick_stat].minor_words only advances at minor
         collections on spawned domains, so it would read 0 for
         forwards that never fill the nursery. *)
      let m0 = Gc.minor_words () in
      let g0 = Gc.quick_stat () in
      let y =
        if t.config.workers = 1 then Model.run_batch model xb
        else Parallel.sequential (fun () -> Model.run_batch model xb)
      in
      let g1 = Gc.quick_stat () in
      Metrics.Counter.add m.Metrics.alloc_minor_words
        (int_of_float (Gc.minor_words () -. m0));
      Metrics.Counter.add m.Metrics.alloc_major_words
        (int_of_float (g1.Gc.major_words -. g0.Gc.major_words));
      if Tensor.rank y <> 2 || Tensor.dim y 0 <> n then
        failwith "model returned a non-[n; classes] output";
      y
    with
    | exception e ->
        Metrics.Gauge.decr m.Metrics.in_flight;
        let msg = Printexc.to_string e in
        List.iter (fun ticket -> complete t ticket (Failed msg)) live
    | y ->
        Metrics.Histogram.observe m.Metrics.compute (now () -. dispatch);
        Metrics.Gauge.decr m.Metrics.in_flight;
        let classes = Tensor.dim y 1 in
        List.iteri
          (fun i ticket ->
            let row = Tensor.zeros [| classes |] in
            Array.blit y.Tensor.data (i * classes) row.Tensor.data 0 classes;
            complete t ticket (Output row))
          live
  end

let worker t () =
  let rec loop () =
    match Batcher.next_batch t.batcher with
    | None -> ()
    | Some (tickets, opened) ->
        run_batch t tickets ~opened;
        loop ()
  in
  loop ()

let start ?(config = default_config) ~model ~input_dims () =
  if Array.length input_dims <> 3 || Array.exists (fun d -> d <= 0) input_dims
  then invalid_arg "Server.start: input_dims must be [| c; h; w |] > 0";
  if config.workers < 1 then invalid_arg "Server.start: workers < 1";
  let t =
    {
      config;
      resolve = model;
      input_dims = Array.copy input_dims;
      numel = input_dims.(0) * input_dims.(1) * input_dims.(2);
      batcher =
        Batcher.create ~capacity:config.capacity ~max_batch:config.max_batch
          ~max_delay:config.max_delay ();
      metrics = Metrics.create ();
      warmed = None;
      domains = [];
      stopped = false;
      stop_mutex = Mutex.create ();
    }
  in
  (* Plan-aware serving: compile the initial model's plans for every
     batch size the batcher can emit before accepting traffic. *)
  (let m = model () in
   Model.warm m ~input_dims
     ~batch_sizes:(List.init config.max_batch (fun i -> i + 1));
   t.warmed <- Some m);
  t.domains <- List.init config.workers (fun _ -> Domain.spawn (worker t));
  t

let for_model ?config model ~input_dims () =
  start ?config ~model:(fun () -> model) ~input_dims ()

let valid_shape t x =
  Tensor.rank x = 3
  && Tensor.dim x 0 = t.input_dims.(0)
  && Tensor.dim x 1 = t.input_dims.(1)
  && Tensor.dim x 2 = t.input_dims.(2)

let submit ?deadline t x =
  let submitted = now () in
  let rel =
    match deadline with Some _ -> deadline | None -> t.config.default_deadline
  in
  let ticket =
    {
      input = x;
      submitted;
      deadline = Option.map (fun d -> submitted +. d) rel;
      cell_mutex = Mutex.create ();
      cell_cond = Condition.create ();
      cell = None;
      dispatched = 0.0;
      completed_at = 0.0;
    }
  in
  if not (valid_shape t x) then begin
    let got =
      String.concat "x"
        (List.init (Tensor.rank x) (fun i -> string_of_int (Tensor.dim x i)))
    in
    complete t ticket
      (Rejected_invalid
         (Printf.sprintf "input shape %s, expected %dx%dx%d" got
            t.input_dims.(0) t.input_dims.(1) t.input_dims.(2)))
  end
  else if (match rel with Some r -> r <= 0.0 | None -> false) then begin
    (* The budget arrived already spent (upstream queueing ate it all);
       reject at admission instead of batching doomed work. *)
    Metrics.Counter.incr t.metrics.Metrics.deadline_rejected;
    complete t ticket Deadline_expired
  end
  else begin
    Metrics.Counter.incr t.metrics.Metrics.accepted;
    match Batcher.submit t.batcher ticket with
    | Batcher.Accepted ->
        Metrics.Gauge.set t.metrics.Metrics.queue_depth
          (Batcher.length t.batcher)
    | Batcher.Overloaded -> complete t ticket Rejected_overload
    | Batcher.Closed -> complete t ticket Rejected_closed
  end;
  ticket

let await ticket =
  Mutex.lock ticket.cell_mutex;
  while ticket.cell = None do
    Condition.wait ticket.cell_cond ticket.cell_mutex
  done;
  let r = Option.get ticket.cell in
  Mutex.unlock ticket.cell_mutex;
  r

let peek ticket =
  Mutex.lock ticket.cell_mutex;
  let r = ticket.cell in
  Mutex.unlock ticket.cell_mutex;
  r

let infer ?deadline t x = await (submit ?deadline t x)
let metrics t = t.metrics
let queue_depth t = Batcher.length t.batcher
let config t = t.config

let shutdown t =
  Mutex.lock t.stop_mutex;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_mutex;
  if not already then begin
    (* Close admission; workers drain the remaining queue, see [None],
       and exit — every accepted ticket still gets a real outcome. *)
    Batcher.shutdown t.batcher;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let timings ticket =
  if ticket.dispatched > 0.0 && ticket.completed_at > 0.0 then
    Some
      ( ticket.dispatched -. ticket.submitted,
        ticket.completed_at -. ticket.dispatched )
  else None

(* ------------------------------------------------------------------ *)
(* Wire daemon: the server above, exposed on a Unix-domain socket.

   One POSIX thread accepts connections (select-polled so a stop flag
   can interrupt it — close() alone does not reliably wake a blocked
   accept); one thread per connection reads frames, executes them and
   writes the reply with the echoed request id.  Handler threads block
   in [await] while the compute domains work, so the dynamic batcher
   coalesces requests across connections exactly as it does across
   in-process submitters.

   The daemon serves one model at a time out of a Registry directory.
   [Publish] only stages an artifact; serving changes when [Activate]
   flips the registry's active pointer (two-phase fleet publish).
   Whenever the daemon starts serving an entry it pins that version as
   active, so a staged-but-not-activated newer version never serves
   early.  If activation changes the input dims the server is restarted;
   same-dims flips just swap the resolver's entry between batches. *)

type serving = {
  s_entry : Registry.entry ref; (* resolver reads this between batches *)
  s_server : t;
}

type daemon = {
  d_path : string;
  d_registry : Registry.t;
  d_config : config;
  d_listen : Unix.file_descr;
  d_mutex : Mutex.t;
  d_swap : Mutex.t; (* serializes Activate-driven server swaps *)
  mutable d_serving : serving option;
  mutable d_conns : (Unix.file_descr * Thread.t) list;
  mutable d_accept : Thread.t option;
  mutable d_accepting : bool;
  mutable d_draining : bool;
  mutable d_stopped : bool;
  dc_connections : Metrics.Counter.t;
  dc_frames_in : Metrics.Counter.t;
  dc_frames_out : Metrics.Counter.t;
  dc_decode_errors : Metrics.Counter.t;
}

let wire_outcome ticket = function
  | Output row ->
      let queue_wait, service =
        match timings ticket with Some qs -> qs | None -> (0.0, 0.0)
      in
      Wire.Logits { queue_wait; service; data = row.Tensor.data }
  | Rejected_overload -> Wire.Overloaded
  | Deadline_expired -> Wire.Expired
  | Rejected_invalid m -> Wire.Invalid m
  | Rejected_closed -> Wire.Closed
  | Failed m -> Wire.Failed m

let start_serving d entry =
  let s_entry = ref entry in
  let server =
    start ~config:d.d_config
      ~model:(fun () -> !s_entry.Registry.model)
      ~input_dims:entry.Registry.input_dims ()
  in
  (* Pin what we serve so later [Publish] staging cannot shift
     [Registry.resolve] out from under the active pointer. *)
  ignore
    (Registry.activate d.d_registry ~name:entry.Registry.name
       ~version:entry.Registry.version);
  { s_entry; s_server = server }

let handle_infer d ~deadline ~dims ~data =
  let serving, draining =
    Mutex.lock d.d_mutex;
    let s = (d.d_serving, d.d_draining) in
    Mutex.unlock d.d_mutex;
    s
  in
  if draining then Wire.Closed
  else
    match serving with
    | None -> Wire.No_model
    | Some s ->
        let numel = Array.fold_left ( * ) 1 dims in
        if
          Array.length dims <> 3
          || Array.exists (fun x -> x <= 0) dims
          || numel <> Array.length data
        then
          Wire.Invalid
            (Printf.sprintf "bad tensor: %d dims, %d elements for %d floats"
               (Array.length dims) numel (Array.length data))
        else begin
          let x = Tensor.zeros dims in
          Array.blit data 0 x.Tensor.data 0 numel;
          let ticket = submit ?deadline s.s_server x in
          wire_outcome ticket (await ticket)
        end

let daemon_stats_json d =
  Mutex.lock d.d_mutex;
  let serving = d.d_serving and draining = d.d_draining in
  Mutex.unlock d.d_mutex;
  let serving_json =
    match serving with
    | None -> "null"
    | Some s ->
        let e = !(s.s_entry) in
        Printf.sprintf "{\"name\": %S, \"version\": %d}" e.Registry.name
          e.Registry.version
  in
  Printf.sprintf
    "{\n\
    \  \"serving\": %s,\n\
    \  \"draining\": %b,\n\
    \  \"wire\": {\"connections\": %d, \"frames_in\": %d, \"frames_out\": %d, \
     \"decode_errors\": %d},\n\
    \  \"server\": %s}\n"
    serving_json draining
    (Metrics.Counter.value d.dc_connections)
    (Metrics.Counter.value d.dc_frames_in)
    (Metrics.Counter.value d.dc_frames_out)
    (Metrics.Counter.value d.dc_decode_errors)
    (match serving with
    | None -> "null"
    | Some s -> Metrics.to_json (metrics s.s_server))

let handle_msg d msg =
  match msg with
  | Wire.Infer { key = _; deadline; dims; data } ->
      Wire.Infer_reply (handle_infer d ~deadline ~dims ~data)
  | Wire.Ping ->
      Mutex.lock d.d_mutex;
      let serving = d.d_serving and draining = d.d_draining in
      Mutex.unlock d.d_mutex;
      Wire.Pong
        {
          healthy = serving <> None && not draining;
          queue_depth =
            (match serving with
            | Some s -> queue_depth s.s_server
            | None -> 0);
          capacity = d.d_config.capacity;
          draining;
        }
  | Wire.Publish { name; version; input_dims; payload } -> (
      match Model.of_string payload with
      | Error reason -> Wire.Publish_reply { ok = false; reason }
      | Ok model -> (
          match
            Registry.publish d.d_registry ~name ~version ~input_dims model
          with
          | Ok _ -> Wire.Publish_reply { ok = true; reason = "staged" }
          | Error e ->
              Wire.Publish_reply
                { ok = false; reason = Registry.error_to_string e }))
  | Wire.Activate { name; version } -> (
      match Registry.activate d.d_registry ~name ~version with
      | Error e ->
          Wire.Activate_reply
            { ok = false; reason = Registry.error_to_string e }
      | Ok () -> (
          match Registry.lookup ~version d.d_registry name with
          | Error e ->
              Wire.Activate_reply
                { ok = false; reason = Registry.error_to_string e }
          | Ok entry ->
              Mutex.lock d.d_swap;
              Mutex.lock d.d_mutex;
              let previous = d.d_serving in
              let same_dims =
                match previous with
                | Some s -> !(s.s_entry).Registry.input_dims = entry.Registry.input_dims
                | None -> false
              in
              if same_dims then begin
                (* Same shape: swap the entry the resolver reads; the
                   next batch picks up the new weights, in-flight
                   batches keep the version they resolved. *)
                (match previous with
                | Some s -> s.s_entry := entry
                | None -> ());
                Mutex.unlock d.d_mutex
              end
              else begin
                d.d_serving <- None;
                Mutex.unlock d.d_mutex;
                (match previous with
                | Some s -> shutdown s.s_server
                | None -> ());
                let s = start_serving d entry in
                Mutex.lock d.d_mutex;
                d.d_serving <- Some s;
                Mutex.unlock d.d_mutex
              end;
              Mutex.unlock d.d_swap;
              Wire.Activate_reply { ok = true; reason = "active" }))
  | Wire.Model_info { name } ->
      let versions =
        match List.assoc_opt name (Registry.names d.d_registry) with
        | Some vs -> vs
        | None -> []
      in
      Wire.Model_info_reply
        { active = Registry.active_version d.d_registry name; versions }
  | Wire.Stats -> Wire.Stats_reply (daemon_stats_json d)
  | Wire.Drain ->
      Mutex.lock d.d_mutex;
      d.d_draining <- true;
      Mutex.unlock d.d_mutex;
      Wire.Drain_reply
  | Wire.Infer_reply _ | Wire.Pong _ | Wire.Publish_reply _
  | Wire.Activate_reply _ | Wire.Model_info_reply _ | Wire.Stats_reply _
  | Wire.Drain_reply | Wire.Nack _ ->
      Wire.Nack "shard expects requests, not replies"

let unregister_conn d fd =
  Mutex.lock d.d_mutex;
  d.d_conns <- List.filter (fun (fd', _) -> fd' != fd) d.d_conns;
  Mutex.unlock d.d_mutex

(* Injected mid-frame drop on the reply path: half the encoded reply,
   then the connection dies.  The client's CRC/length checks must turn
   this into a typed Io/Decode error — never a wrong answer. *)
let write_reply_partial fd frame =
  let len = String.length frame / 2 in
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd frame off (len - off) in
      go (off + n)
  in
  (try go 0 with Unix.Unix_error _ -> ());
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let handle_conn d fd =
  let dec = Wire.decoder () in
  let rec loop () =
    match Wire.read_frame fd dec with
    | exception Unix.Unix_error (_, _, _) -> ()
    | Error `Eof -> ()
    | Error (`Error _) ->
        (* Framing is lost; drop the connection (typed errors stay on
           the client side — see Shard_client). *)
        Metrics.Counter.incr d.dc_decode_errors
    | Ok (id, msg) -> (
        Metrics.Counter.incr d.dc_frames_in;
        let reply = handle_msg d msg in
        (* The request has already executed; faults here lose only the
           ack, which is the scenario retry/hedging must not double-
           execute around. *)
        match Fault.probe Fault.Reply ~peer:d.d_path with
        | Some Fault.Refuse -> (
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        | Some Fault.Drop -> write_reply_partial fd (Wire.encode ~id reply)
        | fault -> (
            (match fault with
            | Some (Fault.Stall dur | Fault.Delay dur) -> Unix.sleepf dur
            | _ -> ());
            match Wire.write_frame fd ~id reply with
            | () ->
                Metrics.Counter.incr d.dc_frames_out;
                loop ()
            | exception Unix.Unix_error (_, _, _) -> ()))
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  unregister_conn d fd

let accept_loop d =
  let rec loop () =
    if d.d_accepting then
      match Unix.select [ d.d_listen ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> () (* listener closed *)
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept d.d_listen with
          | exception Unix.Unix_error (_, _, _) -> if d.d_accepting then loop ()
          | fd, _ ->
              Metrics.Counter.incr d.dc_connections;
              Mutex.lock d.d_mutex;
              if d.d_accepting then begin
                let th = Thread.create (fun () -> handle_conn d fd) () in
                d.d_conns <- (fd, th) :: d.d_conns;
                Mutex.unlock d.d_mutex;
                loop ()
              end
              else begin
                Mutex.unlock d.d_mutex;
                try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
              end)
  in
  loop ()

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let listen ?(config = default_config) ~registry ~path () =
  Lazy.force ignore_sigpipe;
  (* A stale socket file from a killed daemon blocks bind; remove it. *)
  (try if Sys.file_exists path then Unix.unlink path
   with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64
      with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
      | () ->
          let d =
            {
              d_path = path;
              d_registry = registry;
              d_config = config;
              d_listen = fd;
              d_mutex = Mutex.create ();
              d_swap = Mutex.create ();
              d_serving = None;
              d_conns = [];
              d_accept = None;
              d_accepting = true;
              d_draining = false;
              d_stopped = false;
              dc_connections = Metrics.Counter.create "connections";
              dc_frames_in = Metrics.Counter.create "frames_in";
              dc_frames_out = Metrics.Counter.create "frames_out";
              dc_decode_errors = Metrics.Counter.create "decode_errors";
            }
          in
          (* Recovery: a restarted shard has no active pointer on its
             fresh registry handle, so it serves the newest artifact of
             the first name on disk (and re-pins it). *)
          (match Registry.names registry with
          | (name, _) :: _ -> (
              match Registry.resolve registry name with
              | Ok entry -> d.d_serving <- Some (start_serving d entry)
              | Error _ -> ())
          | [] -> ());
          d.d_accept <- Some (Thread.create (fun () -> accept_loop d) ());
          Ok d)

let daemon_path d = d.d_path

let daemon_draining d =
  Mutex.lock d.d_mutex;
  let r = d.d_draining in
  Mutex.unlock d.d_mutex;
  r

let snapshot_conns d =
  Mutex.lock d.d_mutex;
  let conns = d.d_conns in
  Mutex.unlock d.d_mutex;
  conns

let join_accept d =
  match d.d_accept with
  | Some th ->
      d.d_accept <- None;
      Thread.join th
  | None -> ()

let teardown d ~abrupt =
  Mutex.lock d.d_mutex;
  let already = d.d_stopped in
  d.d_stopped <- true;
  d.d_draining <- true;
  d.d_accepting <- false;
  Mutex.unlock d.d_mutex;
  if not already then begin
    join_accept d;
    (try Unix.close d.d_listen with Unix.Unix_error (_, _, _) -> ());
    (try Unix.unlink d.d_path
     with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
    let conns = snapshot_conns d in
    (* Graceful: half-close the read side so handlers finish the request
       they are on (replies still flow) and then see EOF.  Abrupt
       ("SIGKILL"): full shutdown — clients see EOF mid-request, which
       is exactly what a killed process produces. *)
    let how = if abrupt then Unix.SHUTDOWN_ALL else Unix.SHUTDOWN_RECEIVE in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd how with Unix.Unix_error (_, _, _) -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    (match d.d_serving with Some s -> shutdown s.s_server | None -> ());
    Mutex.lock d.d_mutex;
    d.d_serving <- None;
    Mutex.unlock d.d_mutex
  end

let stop_daemon d = teardown d ~abrupt:false
let kill_daemon d = teardown d ~abrupt:true

let wait_daemon d =
  match d.d_accept with Some th -> Thread.join th | None -> ()
