(* Inference server: admission-controlled dynamic batcher in front of a
   worker pool of compute domains.

   A request is one image [c; h; w]; the batcher coalesces up to
   [max_batch] of them (waiting at most [max_delay] for stragglers) into
   one [n; c; h; w] batch, the worker runs the model once, and each
   request gets its own logits row back.  Because every model op is
   per-sample independent, the row a request receives is bit-identical to
   what a batch-of-1 run would have produced — the qcheck property in
   test/test_serve.ml pins this.

   Worker-pool / domain-pool interaction: with [workers = 1] the single
   compute worker may freely use the global [Parallel] domain pool inside
   kernels (intra-batch parallelism).  With [workers > 1] each batch runs
   under [Parallel.sequential] instead — the pool executes one job at a
   time, so concurrent workers must not submit to it; they provide
   inter-batch parallelism themselves.  Either way results are
   bit-identical (PR 1's seq/par equality).

   Nothing here raises across the API: overload, expired deadlines,
   malformed inputs, post-shutdown submits and even exceptions escaping
   the model all turn into typed per-request outcomes. *)

module Tensor = Twq_tensor.Tensor
module Parallel = Twq_util.Parallel

type config = {
  max_batch : int;
  max_delay : float; (* seconds the batch window stays open *)
  capacity : int; (* bound on the request queue; excess sheds *)
  workers : int; (* compute worker domains *)
  default_deadline : float option; (* relative seconds, per request *)
}

let default_config =
  {
    max_batch = 8;
    max_delay = 0.002;
    capacity = 64;
    workers = 1;
    default_deadline = None;
  }

type outcome =
  | Output of Tensor.t
  | Rejected_overload
  | Deadline_expired
  | Rejected_invalid of string
  | Rejected_closed
  | Failed of string

let outcome_label = function
  | Output _ -> "output"
  | Rejected_overload -> "rejected-overload"
  | Deadline_expired -> "deadline-expired"
  | Rejected_invalid _ -> "rejected-invalid"
  | Rejected_closed -> "rejected-closed"
  | Failed _ -> "failed"

type ticket = {
  input : Tensor.t;
  submitted : float;
  deadline : float option; (* absolute *)
  cell_mutex : Mutex.t;
  cell_cond : Condition.t;
  mutable cell : outcome option;
}

type t = {
  config : config;
  resolve : unit -> Model.t;
  input_dims : int array; (* [| c; h; w |] *)
  numel : int;
  batcher : ticket Batcher.t;
  metrics : Metrics.t;
  mutable warmed : Model.t option; (* last model whose plans were warmed *)
  mutable domains : unit Domain.t list;
  mutable stopped : bool;
  stop_mutex : Mutex.t;
}

let now = Unix.gettimeofday

let complete t ticket outcome =
  (match outcome with
  | Output _ ->
      Metrics.Counter.incr t.metrics.Metrics.completed;
      Metrics.Histogram.observe t.metrics.Metrics.total_latency
        (now () -. ticket.submitted)
  | Rejected_overload -> Metrics.Counter.incr t.metrics.Metrics.rejected_overload
  | Deadline_expired -> Metrics.Counter.incr t.metrics.Metrics.deadline_expired
  | Rejected_invalid _ -> Metrics.Counter.incr t.metrics.Metrics.rejected_invalid
  | Rejected_closed -> Metrics.Counter.incr t.metrics.Metrics.rejected_closed
  | Failed _ -> Metrics.Counter.incr t.metrics.Metrics.failed);
  Mutex.lock ticket.cell_mutex;
  if ticket.cell = None then ticket.cell <- Some outcome;
  Condition.broadcast ticket.cell_cond;
  Mutex.unlock ticket.cell_mutex

let run_batch t tickets ~opened =
  let dispatch = now () in
  let m = t.metrics in
  List.iter
    (fun ticket ->
      Metrics.Histogram.observe m.Metrics.queue_wait
        (dispatch -. ticket.submitted))
    tickets;
  Metrics.Gauge.set m.Metrics.queue_depth (Batcher.length t.batcher);
  (* Split expired requests out before paying for their compute. *)
  let live, dead =
    List.partition
      (fun ticket ->
        match ticket.deadline with None -> true | Some d -> dispatch <= d)
      tickets
  in
  List.iter (fun ticket -> complete t ticket Deadline_expired) dead;
  if live <> [] then begin
    let n = List.length live in
    Metrics.Gauge.incr m.Metrics.in_flight;
    Metrics.Counter.incr m.Metrics.batches;
    Metrics.Counter.add m.Metrics.images n;
    Metrics.Histogram.observe m.Metrics.batch_size (float_of_int n *. 1e-9);
    Metrics.Histogram.observe m.Metrics.batch_assembly (dispatch -. opened);
    match
      let xb =
        Tensor.zeros
          [| n; t.input_dims.(0); t.input_dims.(1); t.input_dims.(2) |]
      in
      List.iteri
        (fun i ticket ->
          Array.blit ticket.input.Tensor.data 0 xb.Tensor.data (i * t.numel)
            t.numel)
        live;
      let model = t.resolve () in
      (* A hot-swapped artifact arrives with packed weights but no
         compiled plans yet; warm every servable batch size once so
         only the first post-swap batch pays the (cheap) planning. *)
      (match t.warmed with
      | Some m when m == model -> ()
      | _ ->
          Model.warm model ~input_dims:t.input_dims
            ~batch_sizes:(List.init t.config.max_batch (fun i -> i + 1));
          t.warmed <- Some model);
      (* Allocation accounting runs on this worker domain.
         [Gc.minor_words] is the per-domain allocation clock —
         [Gc.quick_stat].minor_words only advances at minor
         collections on spawned domains, so it would read 0 for
         forwards that never fill the nursery. *)
      let m0 = Gc.minor_words () in
      let g0 = Gc.quick_stat () in
      let y =
        if t.config.workers = 1 then Model.run_batch model xb
        else Parallel.sequential (fun () -> Model.run_batch model xb)
      in
      let g1 = Gc.quick_stat () in
      Metrics.Counter.add m.Metrics.alloc_minor_words
        (int_of_float (Gc.minor_words () -. m0));
      Metrics.Counter.add m.Metrics.alloc_major_words
        (int_of_float (g1.Gc.major_words -. g0.Gc.major_words));
      if Tensor.rank y <> 2 || Tensor.dim y 0 <> n then
        failwith "model returned a non-[n; classes] output";
      y
    with
    | exception e ->
        Metrics.Gauge.decr m.Metrics.in_flight;
        let msg = Printexc.to_string e in
        List.iter (fun ticket -> complete t ticket (Failed msg)) live
    | y ->
        Metrics.Histogram.observe m.Metrics.compute (now () -. dispatch);
        Metrics.Gauge.decr m.Metrics.in_flight;
        let classes = Tensor.dim y 1 in
        List.iteri
          (fun i ticket ->
            let row = Tensor.zeros [| classes |] in
            Array.blit y.Tensor.data (i * classes) row.Tensor.data 0 classes;
            complete t ticket (Output row))
          live
  end

let worker t () =
  let rec loop () =
    match Batcher.next_batch t.batcher with
    | None -> ()
    | Some (tickets, opened) ->
        run_batch t tickets ~opened;
        loop ()
  in
  loop ()

let start ?(config = default_config) ~model ~input_dims () =
  if Array.length input_dims <> 3 || Array.exists (fun d -> d <= 0) input_dims
  then invalid_arg "Server.start: input_dims must be [| c; h; w |] > 0";
  if config.workers < 1 then invalid_arg "Server.start: workers < 1";
  let t =
    {
      config;
      resolve = model;
      input_dims = Array.copy input_dims;
      numel = input_dims.(0) * input_dims.(1) * input_dims.(2);
      batcher =
        Batcher.create ~capacity:config.capacity ~max_batch:config.max_batch
          ~max_delay:config.max_delay ();
      metrics = Metrics.create ();
      warmed = None;
      domains = [];
      stopped = false;
      stop_mutex = Mutex.create ();
    }
  in
  (* Plan-aware serving: compile the initial model's plans for every
     batch size the batcher can emit before accepting traffic. *)
  (let m = model () in
   Model.warm m ~input_dims
     ~batch_sizes:(List.init config.max_batch (fun i -> i + 1));
   t.warmed <- Some m);
  t.domains <- List.init config.workers (fun _ -> Domain.spawn (worker t));
  t

let for_model ?config model ~input_dims () =
  start ?config ~model:(fun () -> model) ~input_dims ()

let valid_shape t x =
  Tensor.rank x = 3
  && Tensor.dim x 0 = t.input_dims.(0)
  && Tensor.dim x 1 = t.input_dims.(1)
  && Tensor.dim x 2 = t.input_dims.(2)

let submit ?deadline t x =
  let submitted = now () in
  let rel =
    match deadline with Some _ -> deadline | None -> t.config.default_deadline
  in
  let ticket =
    {
      input = x;
      submitted;
      deadline = Option.map (fun d -> submitted +. d) rel;
      cell_mutex = Mutex.create ();
      cell_cond = Condition.create ();
      cell = None;
    }
  in
  if not (valid_shape t x) then begin
    let got =
      String.concat "x"
        (List.init (Tensor.rank x) (fun i -> string_of_int (Tensor.dim x i)))
    in
    complete t ticket
      (Rejected_invalid
         (Printf.sprintf "input shape %s, expected %dx%dx%d" got
            t.input_dims.(0) t.input_dims.(1) t.input_dims.(2)))
  end
  else begin
    Metrics.Counter.incr t.metrics.Metrics.accepted;
    match Batcher.submit t.batcher ticket with
    | Batcher.Accepted ->
        Metrics.Gauge.set t.metrics.Metrics.queue_depth
          (Batcher.length t.batcher)
    | Batcher.Overloaded -> complete t ticket Rejected_overload
    | Batcher.Closed -> complete t ticket Rejected_closed
  end;
  ticket

let await ticket =
  Mutex.lock ticket.cell_mutex;
  while ticket.cell = None do
    Condition.wait ticket.cell_cond ticket.cell_mutex
  done;
  let r = Option.get ticket.cell in
  Mutex.unlock ticket.cell_mutex;
  r

let peek ticket =
  Mutex.lock ticket.cell_mutex;
  let r = ticket.cell in
  Mutex.unlock ticket.cell_mutex;
  r

let infer ?deadline t x = await (submit ?deadline t x)
let metrics t = t.metrics
let queue_depth t = Batcher.length t.batcher
let config t = t.config

let shutdown t =
  Mutex.lock t.stop_mutex;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_mutex;
  if not already then begin
    (* Close admission; workers drain the remaining queue, see [None],
       and exit — every accepted ticket still gets a real outcome. *)
    Batcher.shutdown t.batcher;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
