(* Closed-loop load generator.

   [concurrency] client domains each loop { claim next request id;
   optionally wait for its paced start slot; submit; await; record }.
   With [rate] = 0 the loop is purely closed (each client keeps exactly
   one request outstanding — offered load adapts to the server); with
   [rate] > 0 request [i] is not started before [t0 + i/rate], turning
   the generator into a paced closed loop that can also push the server
   into overload when [rate] exceeds capacity.

   Client-side latency (submit -> outcome observed) is collected per
   domain and merged after the joins, so the percentiles here are
   end-to-end as a caller saw them — the server's own histograms break
   the same time down by phase. *)

module Tensor = Twq_tensor.Tensor

type summary = {
  requests : int;
  completed : int;
  rejected_overload : int;
  deadline_expired : int;
  other_rejected : int;
  wall : float;
  throughput : float; (* completed per wall second *)
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  latency_mean : float;
  latency_max : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let run ~server ~make_input ~requests ?(concurrency = 4) ?(rate = 0.0)
    ?deadline () =
  if requests < 0 then invalid_arg "Loadgen.run: requests < 0";
  let concurrency = Stdlib.max 1 (Stdlib.min concurrency 64) in
  let concurrency = Stdlib.max 1 (Stdlib.min concurrency requests) in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0
  and rejected_overload = Atomic.make 0
  and deadline_expired = Atomic.make 0
  and other = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let client () =
    let lat = ref [] in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < requests then begin
        if rate > 0.0 then begin
          let slot = t0 +. (float_of_int i /. rate) in
          let wait = slot -. Unix.gettimeofday () in
          if wait > 0.0 then Unix.sleepf wait
        end;
        let x = make_input i in
        let sub = Unix.gettimeofday () in
        (match Server.infer ?deadline server x with
        | Server.Output _ ->
            Atomic.incr completed;
            lat := (Unix.gettimeofday () -. sub) :: !lat
        | Server.Rejected_overload -> Atomic.incr rejected_overload
        | Server.Deadline_expired -> Atomic.incr deadline_expired
        | Server.Rejected_invalid _ | Server.Rejected_closed
        | Server.Failed _ ->
            Atomic.incr other);
        loop ()
      end
    in
    loop ();
    !lat
  in
  let clients = List.init concurrency (fun _ -> Domain.spawn client) in
  let latencies = List.concat_map Domain.join clients in
  let wall = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list latencies in
  Array.sort compare lat;
  let n_ok = Atomic.get completed in
  {
    requests;
    completed = n_ok;
    rejected_overload = Atomic.get rejected_overload;
    deadline_expired = Atomic.get deadline_expired;
    other_rejected = Atomic.get other;
    wall;
    throughput = (if wall > 0.0 then float_of_int n_ok /. wall else 0.0);
    latency_p50 = percentile lat 0.50;
    latency_p95 = percentile lat 0.95;
    latency_p99 = percentile lat 0.99;
    latency_mean =
      (if Array.length lat = 0 then 0.0
       else Array.fold_left ( +. ) 0.0 lat /. float_of_int (Array.length lat));
    latency_max = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
  }

let summary_to_json s =
  Printf.sprintf
    "{\n\
    \  \"requests\": %d,\n\
    \  \"completed\": %d,\n\
    \  \"rejected_overload\": %d,\n\
    \  \"deadline_expired\": %d,\n\
    \  \"other_rejected\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"throughput_rps\": %.2f,\n\
    \  \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, \
     \"mean\": %.4f, \"max\": %.4f}\n\
     }\n"
    s.requests s.completed s.rejected_overload s.deadline_expired
    s.other_rejected s.wall s.throughput (1e3 *. s.latency_p50)
    (1e3 *. s.latency_p95) (1e3 *. s.latency_p99) (1e3 *. s.latency_mean)
    (1e3 *. s.latency_max)

let summary_to_text s =
  Printf.sprintf
    "%d requests in %.3f s: %d ok (%.1f req/s), %d shed, %d expired, %d \
     other\nlatency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  max %.3f"
    s.requests s.wall s.completed s.throughput s.rejected_overload
    s.deadline_expired s.other_rejected (1e3 *. s.latency_p50)
    (1e3 *. s.latency_p95) (1e3 *. s.latency_p99) (1e3 *. s.latency_mean)
    (1e3 *. s.latency_max)
