(* Load generators.

   [run] is the closed-loop generator: [concurrency] client domains each
   keep one request outstanding against an in-process Server.  Closed
   loops measure the server at its own pace — offered load adapts to
   service speed, so they understate latency under overload.

   [run_poisson] is the open-loop generator for wire endpoints: request
   arrival times are drawn up front from an exponential inter-arrival
   distribution (deterministic under [seed]) and latency is measured
   from each request's *scheduled* arrival instant, not from when a
   client thread got around to sending it.  That is the standard
   coordinated-omission correction: when the fleet stalls, the requests
   that should have been sent during the stall still charge their wait
   to the fleet.  SLO attainment is then the fraction of all scheduled
   requests answered with logits within the budget.

   Client-side latency is end-to-end as a caller saw it; the server's
   own phase histograms split the same time into queue wait vs service,
   and both generators report that split rather than conflating the two
   (a saturated queue and a slow model need different fixes). *)

module Tensor = Twq_tensor.Tensor
module Rng = Twq_util.Rng
module Mclock = Twq_util.Mclock

type summary = {
  requests : int;
  completed : int;
  rejected_overload : int;
  deadline_expired : int;
  other_rejected : int;
  wall : float;
  throughput : float; (* completed per wall second *)
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  latency_mean : float;
  latency_max : float;
  queue_wait : Metrics.hsnap; (* server-side: submit -> batch dispatch *)
  service : Metrics.hsnap; (* server-side: per-batch compute *)
}

let percentile = Metrics.percentile_of_sorted

let run ~server ~make_input ~requests ?(concurrency = 4) ?(rate = 0.0)
    ?deadline () =
  if requests < 0 then invalid_arg "Loadgen.run: requests < 0";
  let concurrency = Stdlib.max 1 (Stdlib.min concurrency 64) in
  let concurrency = Stdlib.max 1 (Stdlib.min concurrency requests) in
  let next = Atomic.make 0 in
  let completed = Atomic.make 0
  and rejected_overload = Atomic.make 0
  and deadline_expired = Atomic.make 0
  and other = Atomic.make 0 in
  let t0 = Mclock.now () in
  let client () =
    let lat = ref [] in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < requests then begin
        if rate > 0.0 then begin
          let slot = t0 +. (float_of_int i /. rate) in
          let wait = slot -. Mclock.now () in
          if wait > 0.0 then Unix.sleepf wait
        end;
        let x = make_input i in
        let sub = Mclock.now () in
        (match Server.infer ?deadline server x with
        | Server.Output _ ->
            Atomic.incr completed;
            lat := Mclock.elapsed sub :: !lat
        | Server.Rejected_overload -> Atomic.incr rejected_overload
        | Server.Deadline_expired -> Atomic.incr deadline_expired
        | Server.Rejected_invalid _ | Server.Rejected_closed
        | Server.Failed _ ->
            Atomic.incr other);
        loop ()
      end
    in
    loop ();
    !lat
  in
  let clients = List.init concurrency (fun _ -> Domain.spawn client) in
  let latencies = List.concat_map Domain.join clients in
  let wall = Mclock.elapsed t0 in
  let lat = Array.of_list latencies in
  Array.sort compare lat;
  let n_ok = Atomic.get completed in
  let m = Server.metrics server in
  {
    requests;
    completed = n_ok;
    rejected_overload = Atomic.get rejected_overload;
    deadline_expired = Atomic.get deadline_expired;
    other_rejected = Atomic.get other;
    wall;
    throughput = (if wall > 0.0 then float_of_int n_ok /. wall else 0.0);
    latency_p50 = percentile lat 0.50;
    latency_p95 = percentile lat 0.95;
    latency_p99 = percentile lat 0.99;
    latency_mean =
      (if Array.length lat = 0 then 0.0
       else Array.fold_left ( +. ) 0.0 lat /. float_of_int (Array.length lat));
    latency_max = (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
    queue_wait = Metrics.snapshot m.Metrics.queue_wait;
    service = Metrics.snapshot m.Metrics.compute;
  }

let hsnap_json (h : Metrics.hsnap) =
  Printf.sprintf
    "{\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, \"mean\": %.4f, \"max\": \
     %.4f}"
    (1e3 *. h.Metrics.hp50) (1e3 *. h.Metrics.hp95) (1e3 *. h.Metrics.hp99)
    (1e3 *. h.Metrics.hmean) (1e3 *. h.Metrics.hmax)

let summary_to_json s =
  Printf.sprintf
    "{\n\
    \  \"requests\": %d,\n\
    \  \"completed\": %d,\n\
    \  \"rejected_overload\": %d,\n\
    \  \"deadline_expired\": %d,\n\
    \  \"other_rejected\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"throughput_rps\": %.2f,\n\
    \  \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, \
     \"mean\": %.4f, \"max\": %.4f},\n\
    \  \"queue_wait_ms\": %s,\n\
    \  \"service_ms\": %s\n\
     }\n"
    s.requests s.completed s.rejected_overload s.deadline_expired
    s.other_rejected s.wall s.throughput (1e3 *. s.latency_p50)
    (1e3 *. s.latency_p95) (1e3 *. s.latency_p99) (1e3 *. s.latency_mean)
    (1e3 *. s.latency_max) (hsnap_json s.queue_wait) (hsnap_json s.service)

let summary_to_text s =
  Printf.sprintf
    "%d requests in %.3f s: %d ok (%.1f req/s), %d shed, %d expired, %d \
     other\n\
     latency ms: p50 %.3f  p95 %.3f  p99 %.3f  mean %.3f  max %.3f\n\
     queue-wait ms: p50 %.3f  p95 %.3f  p99 %.3f | service ms: p50 %.3f  \
     p95 %.3f  p99 %.3f"
    s.requests s.wall s.completed s.throughput s.rejected_overload
    s.deadline_expired s.other_rejected (1e3 *. s.latency_p50)
    (1e3 *. s.latency_p95) (1e3 *. s.latency_p99) (1e3 *. s.latency_mean)
    (1e3 *. s.latency_max)
    (1e3 *. s.queue_wait.Metrics.hp50)
    (1e3 *. s.queue_wait.Metrics.hp95)
    (1e3 *. s.queue_wait.Metrics.hp99)
    (1e3 *. s.service.Metrics.hp50)
    (1e3 *. s.service.Metrics.hp95)
    (1e3 *. s.service.Metrics.hp99)

(* ------------------------------------------------------------------ *)
(* Open-loop Poisson generator over the wire. *)

type slo_summary = {
  p_requests : int;
  p_completed : int;
  p_overloaded : int;
  p_expired : int;
  p_other_rejected : int; (* invalid / closed / failed / no-model / unavailable *)
  p_lost : int; (* scheduled but never answered (transport death) *)
  p_retries : int; (* client-side resends granted by the retry policy *)
  p_budget_violations : int;
  (* Logits replies whose server-reported queue wait alone exceeded the
     request's deadline budget — the shard should have expired them *)
  p_wall : float;
  p_offered_rate : float;
  p_throughput : float;
  p_slo_budget : float; (* seconds *)
  p_slo_attained : float; (* completed-within-budget / requests *)
  p_latency_p50 : float;
  p_latency_p95 : float;
  p_latency_p99 : float;
  p_latency_mean : float;
  p_latency_max : float;
  p_queue_wait_p50 : float; (* server-reported, per completed request *)
  p_queue_wait_p95 : float;
  p_queue_wait_p99 : float;
  p_service_p50 : float;
  p_service_p95 : float;
  p_service_p99 : float;
}

type client_tally = {
  mutable k_lat : float list; (* from scheduled arrival, completed only *)
  mutable k_qw : float list;
  mutable k_sv : float list;
  mutable k_completed : int;
  mutable k_in_budget : int;
  mutable k_overloaded : int;
  mutable k_expired : int;
  mutable k_other : int;
  mutable k_lost : int;
  mutable k_retries : int;
  mutable k_violations : int;
}

let run_poisson ~connect ~make_input ~requests ~rate ~slo ?(connections = 4)
    ?(seed = 0x9e3779b9) ?(retry = Retry.no_retry) ?deadline () =
  if requests < 0 then invalid_arg "Loadgen.run_poisson: requests < 0";
  if rate <= 0.0 then invalid_arg "Loadgen.run_poisson: rate <= 0";
  if slo <= 0.0 then invalid_arg "Loadgen.run_poisson: slo <= 0";
  let connections = Stdlib.max 1 (Stdlib.min connections 64) in
  let connections = Stdlib.max 1 (Stdlib.min connections requests) in
  (* The whole arrival schedule is drawn up front so it is independent
     of anything the fleet does — the definition of open loop. *)
  let schedule = Array.make requests 0.0 in
  let rng = Rng.create seed in
  let t = ref 0.0 in
  for i = 0 to requests - 1 do
    let u = Rng.float rng 1.0 in
    t := !t +. (-.Float.log (1.0 -. u) /. rate);
    schedule.(i) <- !t
  done;
  let next = Atomic.make 0 in
  let t0 = Mclock.now () in
  let client () =
    let k =
      {
        k_lat = [];
        k_qw = [];
        k_sv = [];
        k_completed = 0;
        k_in_budget = 0;
        k_overloaded = 0;
        k_expired = 0;
        k_other = 0;
        k_lost = 0;
        k_retries = 0;
        k_violations = 0;
      }
    in
    let conn = ref (Result.to_option (connect ())) in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < requests then begin
        let scheduled = t0 +. schedule.(i) in
        let wait = scheduled -. Mclock.now () in
        if wait > 0.0 then Thread.delay wait;
        let x = make_input i in
        (* One send per granted attempt.  The default policy is a single
           attempt and NO retry: a transport death then counts as a lost
           ack, which is exactly what the chaos smoke measures.  With an
           explicit retry policy (inference is idempotent) a resend
           consumes budget and is tallied, so retries are visible in the
           report instead of silently masking faults. *)
        let budget = Retry.start ~seed:(seed + i) retry in
        let rec send () =
          (if !conn = None then conn := Result.to_option (connect ()));
          match !conn with
          | None -> ( match Retry.next budget with
            | Some sleep ->
                k.k_retries <- k.k_retries + 1;
                Thread.delay sleep;
                send ()
            | None -> k.k_lost <- k.k_lost + 1)
          | Some c -> (
              match
                Shard_client.infer ?deadline
                  ~key:(Printf.sprintf "req-%d" i)
                  c x
              with
              | Error _ -> (
                  (* No reply: the connection is in an unknown state. *)
                  Shard_client.close c;
                  conn := None;
                  match Retry.next budget with
                  | Some sleep ->
                      k.k_retries <- k.k_retries + 1;
                      Thread.delay sleep;
                      send ()
                  | None -> k.k_lost <- k.k_lost + 1)
              | Ok { outcome; _ } -> (
                  let done_at = Mclock.now () in
                  match outcome with
                  | Wire.Logits { queue_wait; service; _ } ->
                      let lat = done_at -. scheduled in
                      k.k_completed <- k.k_completed + 1;
                      if lat <= slo then k.k_in_budget <- k.k_in_budget + 1;
                      (match deadline with
                      | Some b when queue_wait > b ->
                          (* The shard served work whose budget its own
                             queue had already spent — deadline
                             enforcement failed somewhere. *)
                          k.k_violations <- k.k_violations + 1
                      | _ -> ());
                      k.k_lat <- lat :: k.k_lat;
                      k.k_qw <- queue_wait :: k.k_qw;
                      k.k_sv <- service :: k.k_sv
                  | Wire.Overloaded -> k.k_overloaded <- k.k_overloaded + 1
                  | Wire.Expired -> k.k_expired <- k.k_expired + 1
                  | Wire.Invalid _ | Wire.Closed | Wire.Failed _
                  | Wire.No_model | Wire.Unavailable _ ->
                      k.k_other <- k.k_other + 1))
        in
        send ();
        loop ()
      end
    in
    loop ();
    (match !conn with Some c -> Shard_client.close c | None -> ());
    k
  in
  (* Thread.join has no return value; clients deposit their tallies in a
     mutex-guarded list instead. *)
  let results = ref [] and results_mutex = Mutex.create () in
  let wrapped () =
    let k = client () in
    Mutex.lock results_mutex;
    results := k :: !results;
    Mutex.unlock results_mutex
  in
  let threads = List.init connections (fun _ -> Thread.create wrapped ()) in
  List.iter Thread.join threads;
  let wall = Mclock.elapsed t0 in
  let ks = !results in
  let sum f = List.fold_left (fun acc k -> acc + f k) 0 ks in
  let sorted f =
    let a = Array.of_list (List.concat_map f ks) in
    Array.sort compare a;
    a
  in
  let lat = sorted (fun k -> k.k_lat)
  and qw = sorted (fun k -> k.k_qw)
  and sv = sorted (fun k -> k.k_sv) in
  let completed = sum (fun k -> k.k_completed) in
  let in_budget = sum (fun k -> k.k_in_budget) in
  {
    p_requests = requests;
    p_completed = completed;
    p_overloaded = sum (fun k -> k.k_overloaded);
    p_expired = sum (fun k -> k.k_expired);
    p_other_rejected = sum (fun k -> k.k_other);
    p_lost = sum (fun k -> k.k_lost);
    p_retries = sum (fun k -> k.k_retries);
    p_budget_violations = sum (fun k -> k.k_violations);
    p_wall = wall;
    p_offered_rate = rate;
    p_throughput = (if wall > 0.0 then float_of_int completed /. wall else 0.0);
    p_slo_budget = slo;
    p_slo_attained =
      (if requests = 0 then 1.0
       else float_of_int in_budget /. float_of_int requests);
    p_latency_p50 = percentile lat 0.50;
    p_latency_p95 = percentile lat 0.95;
    p_latency_p99 = percentile lat 0.99;
    p_latency_mean =
      (if Array.length lat = 0 then 0.0
       else Array.fold_left ( +. ) 0.0 lat /. float_of_int (Array.length lat));
    p_latency_max =
      (if Array.length lat = 0 then 0.0 else lat.(Array.length lat - 1));
    p_queue_wait_p50 = percentile qw 0.50;
    p_queue_wait_p95 = percentile qw 0.95;
    p_queue_wait_p99 = percentile qw 0.99;
    p_service_p50 = percentile sv 0.50;
    p_service_p95 = percentile sv 0.95;
    p_service_p99 = percentile sv 0.99;
  }

let slo_to_json s =
  Printf.sprintf
    "{\n\
    \  \"requests\": %d,\n\
    \  \"completed\": %d,\n\
    \  \"overloaded\": %d,\n\
    \  \"expired\": %d,\n\
    \  \"other_rejected\": %d,\n\
    \  \"lost\": %d,\n\
    \  \"retries\": %d,\n\
    \  \"budget_violations\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"offered_rps\": %.2f,\n\
    \  \"throughput_rps\": %.2f,\n\
    \  \"slo_budget_ms\": %.3f,\n\
    \  \"slo_attained\": %.6f,\n\
    \  \"latency_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, \
     \"mean\": %.4f, \"max\": %.4f},\n\
    \  \"queue_wait_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f},\n\
    \  \"service_ms\": {\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f}\n\
     }\n"
    s.p_requests s.p_completed s.p_overloaded s.p_expired s.p_other_rejected
    s.p_lost s.p_retries s.p_budget_violations s.p_wall s.p_offered_rate
    s.p_throughput
    (1e3 *. s.p_slo_budget) s.p_slo_attained (1e3 *. s.p_latency_p50)
    (1e3 *. s.p_latency_p95) (1e3 *. s.p_latency_p99)
    (1e3 *. s.p_latency_mean) (1e3 *. s.p_latency_max)
    (1e3 *. s.p_queue_wait_p50) (1e3 *. s.p_queue_wait_p95)
    (1e3 *. s.p_queue_wait_p99) (1e3 *. s.p_service_p50)
    (1e3 *. s.p_service_p95) (1e3 *. s.p_service_p99)

let slo_to_text s =
  Printf.sprintf
    "%d requests @ %.1f req/s (open loop) in %.3f s: %d ok, %d overloaded, \
     %d expired, %d other, %d lost, %d retries, %d budget violations\n\
     SLO %.1f ms: %.2f%% attained\n\
     latency ms (from scheduled arrival): p50 %.3f  p95 %.3f  p99 %.3f  max \
     %.3f\n\
     queue-wait ms: p50 %.3f  p99 %.3f | service ms: p50 %.3f  p99 %.3f"
    s.p_requests s.p_offered_rate s.p_wall s.p_completed s.p_overloaded
    s.p_expired s.p_other_rejected s.p_lost s.p_retries s.p_budget_violations
    (1e3 *. s.p_slo_budget)
    (100.0 *. s.p_slo_attained)
    (1e3 *. s.p_latency_p50) (1e3 *. s.p_latency_p95)
    (1e3 *. s.p_latency_p99) (1e3 *. s.p_latency_max)
    (1e3 *. s.p_queue_wait_p50) (1e3 *. s.p_queue_wait_p99)
    (1e3 *. s.p_service_p50) (1e3 *. s.p_service_p99)
