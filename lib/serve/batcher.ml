(* Dynamic batching queue with admission control.

   Producers [submit] into a bounded FIFO; a full queue sheds the request
   with [Overloaded] instead of blocking or raising — the server turns
   that into a typed per-request outcome.  Consumers call [next_batch],
   which blocks until at least one request is queued, then holds the
   batch window open until either [max_batch] requests are available or
   [max_delay] seconds have passed since the window opened, and returns
   up to [max_batch] requests in FIFO order together with the window-open
   timestamp (for batch-assembly metrics).

   OCaml's stdlib [Condition] has no timed wait, so the delay window is a
   short-sleep polling loop (0.2 ms grain) with the lock released while
   sleeping; correctness never depends on the grain, only batch shapes
   do.

   [shutdown] closes admission and wakes everyone: subsequent [submit]s
   return [Closed], while consumers keep draining — batch windows close
   immediately once shut — until the queue is empty, then get [None].

   The window deadline runs on the monotonic clock: an NTP step must
   not wedge a batch window open or fire it early. *)

module Mclock = Twq_util.Mclock

type 'a t = {
  capacity : int;
  max_batch : int;
  max_delay : float;
  mutex : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
}

type submit_result = Accepted | Overloaded | Closed

let create ~capacity ~max_batch ~max_delay () =
  if capacity < 1 then invalid_arg "Batcher.create: capacity < 1";
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  if max_delay < 0.0 then invalid_arg "Batcher.create: max_delay < 0";
  {
    capacity;
    max_batch;
    max_delay;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    closed = false;
  }

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n

let submit t x =
  Mutex.lock t.mutex;
  let r =
    if t.closed then Closed
    else if Queue.length t.q >= t.capacity then Overloaded
    else begin
      Queue.push x t.q;
      Condition.signal t.nonempty;
      Accepted
    end
  in
  Mutex.unlock t.mutex;
  r

let poll_grain = 0.0002

let next_batch t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.q then begin
    (* closed and drained *)
    Mutex.unlock t.mutex;
    None
  end
  else begin
    let opened = Mclock.now () in
    let deadline = opened +. t.max_delay in
    let rec wait_window () =
      if Queue.length t.q < t.max_batch && not t.closed then begin
        let remaining = deadline -. Mclock.now () in
        if remaining > 0.0 then begin
          Mutex.unlock t.mutex;
          Unix.sleepf (Float.min poll_grain remaining);
          Mutex.lock t.mutex;
          wait_window ()
        end
      end
    in
    if t.max_delay > 0.0 && t.max_batch > 1 then wait_window ();
    let n = Stdlib.min t.max_batch (Queue.length t.q) in
    let batch = List.init n (fun _ -> Queue.pop t.q) in
    Mutex.unlock t.mutex;
    Some (batch, opened)
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex
