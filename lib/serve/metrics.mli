(** Serving metrics: counters, gauges, log-bucketed latency histograms.

    Every primitive is safe to update concurrently from many domains.
    Histograms bucket geometrically (four sub-buckets per octave of
    nanoseconds, 256 buckets), so {!Histogram.quantile} is exact to
    within a bucket width (≈19% relative) over 1 ns .. minutes.

    {!to_json} renders a snapshot as plain JSON: duration histograms in
    milliseconds, the [batch_size] histogram in raw request counts
    (recorded via the 1e-9 seconds-per-unit convention used by
    {!Server}). *)

module Counter : sig
  type t

  val create : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val create : string -> t
  val set : t -> int -> unit
  val incr : t -> unit
  val decr : t -> unit
  val value : t -> int
  val name : t -> string
end

module Histogram : sig
  type t

  val create : string -> t

  val observe : t -> float -> unit
  (** Record a duration in seconds (negative / NaN clamp to 0). *)

  val count : t -> int
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0,1]: the upper edge, in seconds, of the
      first bucket whose cumulative count reaches [q]·count, clamped to
      the observed maximum; [0.] when empty. *)

  val name : t -> string

  val observed_max : t -> float
  (** Largest value observed so far, in seconds. *)
end

(** One consistent multi-quantile view of a histogram. *)
type hsnap = {
  hcount : int;
  hmean : float;
  hp50 : float;
  hp95 : float;
  hp99 : float;
  hmax : float;
}

val snapshot : Histogram.t -> hsnap

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted sorted q] is the exact nearest-rank [q]-th
    percentile of an ascending-sorted sample array ([0.] when empty) —
    used by the load generators for client-side latencies, where
    histogram bucketing error is not wanted. *)

(** The fixed metric set of one {!Server.t}. *)
type t = {
  accepted : Counter.t;
  completed : Counter.t;
  rejected_overload : Counter.t;
  deadline_expired : Counter.t;
  deadline_rejected : Counter.t;
      (** subset of [deadline_expired]: budget already spent at
          admission, rejected before queueing *)
  rejected_invalid : Counter.t;
  rejected_closed : Counter.t;
  failed : Counter.t;
  batches : Counter.t;
  images : Counter.t;
  alloc_minor_words : Counter.t;
      (** words allocated on the worker's minor heap during model
          forwards (steady-state should stay near the logits size) *)
  alloc_major_words : Counter.t;
  queue_depth : Gauge.t;
  in_flight : Gauge.t;
  queue_wait : Histogram.t;  (** submit → picked into a batch *)
  batch_assembly : Histogram.t;  (** batch opened → dispatched to compute *)
  compute : Histogram.t;  (** model forward on the assembled batch *)
  total_latency : Histogram.t;  (** submit → completion, per request *)
  batch_size : Histogram.t;  (** raw counts (1e-9 s per request) *)
}

val create : unit -> t
val to_json : t -> string
