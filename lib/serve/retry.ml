module Rng = Twq_util.Rng

type policy = { attempts : int; base : float; cap : float }

let default = { attempts = 3; base = 0.025; cap = 1.0 }
let no_retry = { attempts = 1; base = 0.0; cap = 0.0 }

type t = {
  policy : policy;
  rng : Rng.t;
  mutable used : int;
  mutable prev : float; (* last granted sleep, feeds the jitter window *)
}

let start ?(seed = 0) policy =
  { policy; rng = Rng.create seed; used = 1; prev = policy.base }

let next t =
  if t.used >= t.policy.attempts then None
  else begin
    t.used <- t.used + 1;
    (* Decorrelated jitter: uniform in [base, 3*prev], clamped to cap.
       Degenerates to 0 when base = cap = 0 (no_retry never gets here). *)
    let hi = Float.max t.policy.base (3.0 *. t.prev) in
    let span = hi -. t.policy.base in
    let sleep =
      Float.min t.policy.cap
        (t.policy.base +. (if span > 0.0 then Rng.float t.rng span else 0.0))
    in
    t.prev <- sleep;
    Some sleep
  end

let used t = t.used
