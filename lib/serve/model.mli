(** A servable model artifact: a {!Twq_nn.Deploy} net or a
    {!Twq_nn.Int_graph} integer graph.

    Both run batched: a float NCHW input [n; c; h; w] yields float logits
    [n; classes], and each output row depends only on its own input row —
    batched execution is bit-identical to per-image execution, which the
    dynamic batcher relies on. *)

type t = Net of Twq_nn.Deploy.t | Graph of Twq_nn.Int_graph.t

val kind : t -> string
(** ["net"] or ["graph"] — the tag stored in registry artifact headers. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Dispatches on the payload's magic line; never raises. *)

val run_batch : t -> Twq_tensor.Tensor.t -> Twq_tensor.Tensor.t
(** [run_batch m x] with [x : [n; c; h; w]] returns logits
    [[n; classes]]. *)

val warm : t -> input_dims:int array -> batch_sizes:int list -> unit
(** Pre-compile the execution plans for batches [n; c; h; w] with [n]
    drawn from [batch_sizes] and [input_dims = [| c; h; w |]], so no
    request pays for planning.  Cheap (pure scheduling); no-op for
    graphs without a plan cache. *)
