(** Deterministic, seeded fault injection for the serving fleet.

    A fault plan is a list of rules, each tying an injection {e site}
    (a named point in the client or daemon IO path) to a failure kind
    and a per-call probability.  Decisions are drawn from per-rule
    {!Twq_util.Rng} streams derived from one seed, so a chaos run is a
    pure function of [(seed, sequence of probe calls)]: replaying the
    same seed against the same call sequence reproduces the exact same
    fault schedule.  Nothing here touches sockets — call sites ask
    {!probe} for a verdict and enact it themselves (sleep, close,
    truncate a frame), which keeps the layer trivially portable and
    keeps the disabled path at a single [Atomic.get] per IO operation.

    Spec grammar (env [TWQ_FAULT_SPEC], comma-separated rules):

    {v site[peer]:kind=prob[@ms] v}

    - [site]  — [connect] | [send] | [recv] (client side) | [reply]
                (daemon write path)
    - [peer]  — optional substring filter on the peer/endpoint name
    - [kind]  — [refuse] (fail before IO), [drop] (sever mid-frame),
                [stall] (block for [ms] before IO), [delay] (add [ms]
                latency; same mechanics as stall, different intent)
    - [prob]  — per-call injection probability in [0,1]
    - [@ms]   — duration in milliseconds for [stall]/[delay]
                (default 100)

    Example: [connect:refuse=0.1,reply[shard2]:stall=1.0@300] refuses
    10% of connects anywhere and stalls every reply written by a daemon
    whose peer name contains ["shard2"] for 300 ms. *)

type site = Connect | Send | Recv | Reply

type kind =
  | Refuse  (** fail the operation before any IO happens *)
  | Stall of float  (** block for the given seconds, then proceed *)
  | Drop  (** sever the connection mid-operation (partial frame) *)
  | Delay of float  (** add the given seconds of latency, then proceed *)

type rule = {
  site : site;
  peer : string option;  (** substring filter on the peer name *)
  kind : kind;
  prob : float;
}

type t

val site_name : site -> string
val kind_name : kind -> string

val parse : string -> (rule list, string) result
(** Parse a spec string (grammar above). [Error msg] pinpoints the
    offending rule. *)

val create : ?seed:int -> rule list -> t
(** Build a plan. Equal [(seed, rules)] yield identical decision
    streams. Default seed [0]. *)

val of_spec : ?seed:int -> string -> (t, string) result

val seed : t -> int
val rules : t -> rule list

val decide : t -> site -> peer:string -> kind option
(** Draw a verdict for one IO operation at [site] against [peer].
    Rules are consulted in order; the first whose site and peer filter
    match and whose coin lands under [prob] wins. [None] means proceed
    normally. Thread-safe; every call advances the matching rules'
    streams exactly once, which is what makes replay deterministic. *)

val counts : t -> (string * int) list
(** Injections performed so far, keyed ["refuse"|"stall"|"drop"|"delay"]. *)

val log : t -> (site * string * kind option) list
(** The decision log in call order (bounded; oldest entries are kept).
    Includes [None] verdicts so two runs can be compared decision-for-
    decision. *)

(** {2 Global hook}

    The fleet's IO paths consult one process-global hook so that fault
    injection needs no plumbing through every constructor. When no plan
    is armed, {!probe} is one [Atomic.get] and a branch. *)

val arm : t -> unit
val disarm : unit -> unit
val active : unit -> t option

val probe : site -> peer:string -> kind option
(** [decide] against the armed plan, or [None] when disarmed. *)

val install_from_env : unit -> t option
(** Arm a plan from [TWQ_FAULT_SPEC] / [TWQ_FAULT_SEED] if the spec
    variable is set; returns the armed plan. @raise Invalid_argument on
    a malformed spec or seed — a chaos run with a typo'd spec must die
    loudly, not run clean. *)
