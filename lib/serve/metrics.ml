(* Serving metrics: monotonic counters, gauges and log-bucketed latency
   histograms, all safe to update from many domains at once.  Snapshots
   are plain JSON so CI can parse them with any tool.

   Histogram buckets are geometric with four sub-buckets per octave of
   nanoseconds: bucket [i] covers (2^((i-1)/4), 2^(i/4)] ns, so the
   relative quantile error is bounded by 2^(1/4) - 1 ≈ 19% across the
   whole range (1 ns .. ~2 min) with only 256 slots. *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let create name = { name; v = Atomic.make 0 }
  let incr c = Atomic.incr c.v
  let add c n = ignore (Atomic.fetch_and_add c.v n)
  let value c = Atomic.get c.v
  let name c = c.name
end

module Gauge = struct
  type t = { name : string; v : int Atomic.t }

  let create name = { name; v = Atomic.make 0 }
  let set g n = Atomic.set g.v n
  let incr g = Atomic.incr g.v
  let decr g = Atomic.decr g.v
  let value g = Atomic.get g.v
  let name g = g.name
end

module Histogram = struct
  let n_buckets = 256
  let sub_per_octave = 4.0

  type t = {
    name : string;
    mutex : Mutex.t;
    buckets : int array; (* counts per log bucket, in nanoseconds *)
    mutable count : int;
    mutable sum : float; (* seconds *)
    mutable max : float; (* seconds *)
  }

  let create name =
    {
      name;
      mutex = Mutex.create ();
      buckets = Array.make n_buckets 0;
      count = 0;
      sum = 0.0;
      max = 0.0;
    }

  let bucket_of_ns ns =
    if ns <= 1.0 then 0
    else
      let i = int_of_float (Float.ceil (sub_per_octave *. Float.log2 ns)) in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

  (* Upper edge of bucket [i], back in seconds. *)
  let bucket_upper_s i = Float.pow 2.0 (float_of_int i /. sub_per_octave) *. 1e-9

  let observe h seconds =
    let s = if Float.is_nan seconds || seconds < 0.0 then 0.0 else seconds in
    let b = bucket_of_ns (s *. 1e9) in
    Mutex.lock h.mutex;
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. s;
    if s > h.max then h.max <- s;
    Mutex.unlock h.mutex

  let count h =
    Mutex.lock h.mutex;
    let c = h.count in
    Mutex.unlock h.mutex;
    c

  let mean h =
    Mutex.lock h.mutex;
    let m = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count in
    Mutex.unlock h.mutex;
    m

  (* Upper edge of the first bucket whose cumulative count reaches
     [q * count], clamped to the observed max; 0 for an empty
     histogram. *)
  let quantile h q =
    Mutex.lock h.mutex;
    let r =
      if h.count = 0 then 0.0
      else begin
        let rank = Float.max 1.0 (Float.ceil (q *. float_of_int h.count)) in
        let acc = ref 0 and res = ref (bucket_upper_s (n_buckets - 1)) in
        (try
           for i = 0 to n_buckets - 1 do
             acc := !acc + h.buckets.(i);
             if float_of_int !acc >= rank then begin
               res := bucket_upper_s i;
               raise Exit
             end
           done
         with Exit -> ());
        Float.min !res h.max
      end
    in
    Mutex.unlock h.mutex;
    r

  let name h = h.name

  let observed_max h =
    Mutex.lock h.mutex;
    let m = h.max in
    Mutex.unlock h.mutex;
    m
end

(* One consistent view of a histogram for reports that print several
   quantiles at once (loadgen summaries, daemon stats). *)
type hsnap = {
  hcount : int;
  hmean : float;
  hp50 : float;
  hp95 : float;
  hp99 : float;
  hmax : float;
}

let snapshot h =
  {
    hcount = Histogram.count h;
    hmean = Histogram.mean h;
    hp50 = Histogram.quantile h 0.50;
    hp95 = Histogram.quantile h 0.95;
    hp99 = Histogram.quantile h 0.99;
    hmax = Histogram.observed_max h;
  }

(* Exact nearest-rank percentile over already-sorted client-side
   samples — the sharp counterpart to the ≈19%-bucketed histogram
   quantiles, shared by the load generators. *)
let percentile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

type t = {
  accepted : Counter.t;
  completed : Counter.t;
  rejected_overload : Counter.t;
  deadline_expired : Counter.t;
  deadline_rejected : Counter.t;
  rejected_invalid : Counter.t;
  rejected_closed : Counter.t;
  failed : Counter.t;
  batches : Counter.t;
  images : Counter.t;
  alloc_minor_words : Counter.t;
  alloc_major_words : Counter.t;
  queue_depth : Gauge.t;
  in_flight : Gauge.t;
  queue_wait : Histogram.t;
  batch_assembly : Histogram.t;
  compute : Histogram.t;
  total_latency : Histogram.t;
  batch_size : Histogram.t;
}

let create () =
  {
    accepted = Counter.create "accepted";
    completed = Counter.create "completed";
    rejected_overload = Counter.create "rejected_overload";
    deadline_expired = Counter.create "deadline_expired";
    deadline_rejected = Counter.create "deadline_rejected";
    rejected_invalid = Counter.create "rejected_invalid";
    rejected_closed = Counter.create "rejected_closed";
    failed = Counter.create "failed";
    batches = Counter.create "batches";
    images = Counter.create "images";
    alloc_minor_words = Counter.create "alloc_minor_words";
    alloc_major_words = Counter.create "alloc_major_words";
    queue_depth = Gauge.create "queue_depth";
    in_flight = Gauge.create "in_flight";
    queue_wait = Histogram.create "queue_wait";
    batch_assembly = Histogram.create "batch_assembly";
    compute = Histogram.create "compute";
    total_latency = Histogram.create "total_latency";
    batch_size = Histogram.create "batch_size";
  }

let counters m =
  [
    m.accepted; m.completed; m.rejected_overload; m.deadline_expired;
    m.deadline_rejected; m.rejected_invalid; m.rejected_closed; m.failed;
    m.batches; m.images;
    m.alloc_minor_words; m.alloc_major_words;
  ]

let gauges m = [ m.queue_depth; m.in_flight ]

let histograms m =
  [ m.queue_wait; m.batch_assembly; m.compute; m.total_latency; m.batch_size ]

(* All durations reported in milliseconds; batch_size buckets are in
   "nanoseconds" of the raw count, so its quantiles are reported as raw
   values instead. *)
let histogram_json ?(unit_ms = true) h =
  let conv v = if unit_ms then v *. 1e3 else v *. 1e9 in
  Printf.sprintf
    "{\"count\": %d, \"mean%s\": %.6f, \"p50%s\": %.6f, \"p95%s\": %.6f, \
     \"p99%s\": %.6f, \"max%s\": %.6f}"
    (Histogram.count h)
    (if unit_ms then "_ms" else "")
    (conv (Histogram.mean h))
    (if unit_ms then "_ms" else "")
    (conv (Histogram.quantile h 0.50))
    (if unit_ms then "_ms" else "")
    (conv (Histogram.quantile h 0.95))
    (if unit_ms then "_ms" else "")
    (conv (Histogram.quantile h 0.99))
    (if unit_ms then "_ms" else "")
    (conv h.Histogram.max)

let to_json m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"counters\": {";
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\": %d"
           (if i = 0 then "" else ", ")
           (Counter.name c) (Counter.value c)))
    (counters m);
  Buffer.add_string buf "},\n  \"gauges\": {";
  List.iteri
    (fun i g ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\": %d"
           (if i = 0 then "" else ", ")
           (Gauge.name g) (Gauge.value g)))
    (gauges m);
  Buffer.add_string buf "},\n  \"histograms\": {\n";
  List.iteri
    (fun i h ->
      let unit_ms = Histogram.name h <> "batch_size" in
      Buffer.add_string buf
        (Printf.sprintf "%s    \"%s\": %s"
           (if i = 0 then "" else ",\n")
           (Histogram.name h)
           (histogram_json ~unit_ms h)))
    (histograms m);
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf
