(** Consistent-hash shard router.

    The router is a {!Wire}-speaking daemon that fronts a fixed fleet of
    shard endpoints.  Each [Infer]'s routing key is hashed onto a ring of
    virtual nodes (FNV-1a 64-bit, [vnodes] points per shard), so a given
    key always lands on the same shard while live — and when shards die,
    only the keys they owned move (to the next distinct shard clockwise
    on the ring; everything else stays put).

    Health: a heartbeat thread pings every shard each
    [heartbeat_interval]; a shard that fails its ping (or reports
    draining) is marked [Dead] and skipped until a later ping succeeds.
    A shard that answers an infer with typed backpressure ([Overloaded])
    is marked [Backpressured]; the request spills to the next ring node,
    and the mark clears on the next successful exchange.  Inference is
    idempotent, so a request cut off by a dying shard (EOF mid-request)
    is retried transparently against the next candidate — clients only
    see [Unavailable] when every candidate is gone. *)

(** The hash ring, exposed for property tests. *)
module Ring : sig
  type t

  val create : ?vnodes:int -> string list -> t
  (** [vnodes] defaults to 64 points per endpoint.  Duplicate endpoints
      are collapsed; order does not matter. *)

  val endpoints : t -> string list
  (** Sorted, distinct. *)

  val route : t -> string -> string option
  (** Owner of a key: the first point clockwise from the key's hash.
      [None] only for an empty ring. *)

  val successors : t -> string -> string list
  (** All distinct endpoints in ring order starting at the key's owner —
      the failover candidate order. *)

  val add : t -> string -> t

  val remove : t -> string -> t
end

type health = Healthy | Backpressured | Dead

val health_label : health -> string

type config = {
  vnodes : int;  (** ring points per shard *)
  heartbeat_interval : float;  (** seconds between ping sweeps *)
  connect_timeout : float;  (** per-exchange shard socket timeout *)
  pool : int;  (** idle connections kept per shard *)
}

val default_config : config
(** [{ vnodes = 64; heartbeat_interval = 0.25; connect_timeout = 10.;
      pool = 4 }] *)

type t

val start :
  ?config:config -> shards:string list -> path:string -> unit ->
  (t, string) result
(** Bind the router's own Unix-domain socket at [path] and start the
    accept and heartbeat threads.  [shards] are the fleet's endpoint
    socket paths; they do not need to be up yet (the heartbeat will find
    them). *)

val path : t -> string

val shard_health : t -> (string * health) list
(** Current view, in [shards] order. *)

val counters : t -> (string * int) list
(** routed / failovers / spills / unavailable / unhealthy_transitions /
    recoveries, by name. *)

val stats_json : t -> string

val stop : t -> unit
(** Graceful: stop accepting, finish in-flight requests, close shard
    connections.  Idempotent. *)

val wait : t -> unit
(** Block until {!stop} is called from elsewhere. *)
