(** Consistent-hash shard router.

    The router is a {!Wire}-speaking daemon that fronts a fixed fleet of
    shard endpoints.  Each [Infer]'s routing key is hashed onto a ring of
    virtual nodes (FNV-1a 64-bit finished with murmur3's fmix64 — raw
    FNV clusters the near-identical vnode names; [vnodes] points per
    shard), so a given
    key always lands on the same shard while live — and when shards die,
    only the keys they owned move (to the next distinct shard clockwise
    on the ring; everything else stays put).

    Health: a heartbeat thread pings every shard each
    [heartbeat_interval]; a shard that fails its ping (or reports
    draining) is marked [Dead] and skipped until a later ping succeeds.
    A shard that answers an infer with typed backpressure ([Overloaded])
    is marked [Backpressured]; the request spills to the next ring node,
    and the mark clears on the next successful exchange.  Inference is
    idempotent, so a request cut off by a dying shard (EOF mid-request)
    is retried transparently against the next candidate — clients only
    see [Unavailable] when every candidate is gone.

    Resilience: each shard carries a circuit {!Breaker} (tripped by K
    consecutive transport failures, including failed heartbeat pings;
    half-open probes after [breaker_cooldown]; closed again only by a
    successful traffic probe).  Each request gets a {!Retry.policy}
    attempt budget with decorrelated-jitter backoff.  The relative wire
    deadline is re-derived from the monotonic clock before every hop
    (elapsed routing and backoff time is deducted; a spent budget is
    answered [Expired] without forwarding).  With [hedge] enabled, a
    request whose first attempt is slower than the observed p99 attempt
    latency races a second shard; the first typed reply wins and the
    loser's reply is discarded. *)

(** The hash ring, exposed for property tests. *)
module Ring : sig
  type t

  val create : ?vnodes:int -> string list -> t
  (** [vnodes] defaults to 64 points per endpoint.  Duplicate endpoints
      are collapsed; order does not matter. *)

  val endpoints : t -> string list
  (** Sorted, distinct. *)

  val route : t -> string -> string option
  (** Owner of a key: the first point clockwise from the key's hash.
      [None] only for an empty ring. *)

  val successors : t -> string -> string list
  (** All distinct endpoints in ring order starting at the key's owner —
      the failover candidate order. *)

  val add : t -> string -> t

  val remove : t -> string -> t
end

type health = Healthy | Backpressured | Dead

val health_label : health -> string

(** Per-shard circuit breaker, exposed for deterministic unit tests
    (callers pass [now] explicitly, so the state machine needs no
    sleeping to drive). *)
module Breaker : sig
  type state = Closed | Open | Half_open

  val state_label : state -> string

  type t

  val create : ?failures:int -> ?cooldown:float -> unit -> t
  (** Trip after [failures] consecutive failures (default 5); grant a
      half-open probe after [cooldown] seconds open (default 1). *)

  val state : t -> state

  val admit : t -> now:float -> [ `Yes | `Probe | `No ]
  (** May traffic flow now?  [`Probe] grants exactly one trial request;
      a probe that never reports back re-arms after another cooldown. *)

  val success : t -> [ `Closed_now | `Stayed ]
  (** Resets the failure count (Closed) or closes the breaker
      (Half_open).  Ignored while Open — only a probe may close. *)

  val failure : t -> now:float -> [ `Opened | `Stayed ]
end

type config = {
  vnodes : int;  (** ring points per shard *)
  heartbeat_interval : float;  (** seconds between ping sweeps *)
  connect_timeout : float;  (** per-exchange shard socket timeout *)
  pool : int;  (** idle connections kept per shard *)
  retry : Retry.policy;  (** per-request attempt budget *)
  breaker_failures : int;  (** consecutive failures to trip a breaker *)
  breaker_cooldown : float;  (** seconds open before a half-open probe *)
  hedge : bool;  (** race a second shard on slow requests *)
  hedge_floor : float;  (** minimum hedge delay, seconds *)
  seed : int;  (** retry-jitter seed *)
}

val default_config : config
(** [{ vnodes = 64; heartbeat_interval = 0.25; connect_timeout = 2.;
      pool = 4; retry = Retry.default; breaker_failures = 5;
      breaker_cooldown = 1.; hedge = false; hedge_floor = 0.01;
      seed = 0 }] *)

type t

val start :
  ?config:config -> shards:string list -> path:string -> unit ->
  (t, string) result
(** Bind the router's own Unix-domain socket at [path] and start the
    accept and heartbeat threads.  [shards] are the fleet's endpoint
    socket paths; they do not need to be up yet (the heartbeat will find
    them). *)

val path : t -> string

val shard_health : t -> (string * health) list
(** Current view, in [shards] order. *)

val counters : t -> (string * int) list
(** routed / failovers / spills / unavailable / unhealthy_transitions /
    recoveries / retries / hedges / hedge_wins / breaker_opens /
    breaker_probes / breaker_closes / deadline_rejected, by name. *)

val breakers : t -> (string * Breaker.state) list
(** Current breaker state per shard, in [shards] order. *)

val stats_json : t -> string

val stop : t -> unit
(** Graceful: stop accepting, finish in-flight requests, close shard
    connections.  Idempotent. *)

val wait : t -> unit
(** Block until {!stop} is called from elsewhere. *)
