(* Length-prefixed binary framing for the serving fleet.

   Frame = "TWQW" | version u8 | tag u8 | id i64 | len u32 | payload |
   crc32 u32, all integers little-endian, the CRC covering everything
   after the magic.  Floats are carried as IEEE-754 bit patterns
   (Int64.bits_of_float), so tensors and deadlines round-trip
   bit-exactly — the fleet-wide analogue of the hex-float convention the
   checkpoint/serializer formats use.

   Decoding is a resumable pull parser over an append-only buffer:
   [feed] any chunking (down to one byte at a time), [next] consumes a
   frame only when all of it has arrived.  Validation order is magic ->
   version -> length bound -> (wait for the full frame) -> CRC -> tag ->
   payload body, so a flipped byte anywhere surfaces as the most
   specific typed error and never as a successfully decoded frame (the
   CRC covers all of them).  Errors poison the decoder: once framing is
   lost there is no resynchronization, the connection must be dropped. *)

module Crc32 = Twq_util.Crc32

let magic = "TWQW"
let version = 1
let header_len = 18
let trailer_len = 4
let default_max_frame = 64 * 1024 * 1024

type error =
  | Bad_magic
  | Unsupported_version of int
  | Unknown_tag of int
  | Oversized of { len : int; limit : int }
  | Crc_mismatch of { expected : int; got : int }
  | Malformed of string
  | Truncated
  | Trailing of int

let error_to_string = function
  | Bad_magic -> "bad frame magic"
  | Unsupported_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Unknown_tag t -> Printf.sprintf "unknown message tag %d" t
  | Oversized { len; limit } ->
      Printf.sprintf "frame payload %d exceeds limit %d" len limit
  | Crc_mismatch { expected; got } ->
      Printf.sprintf "frame crc mismatch: frame says %08x, computed %08x"
        expected got
  | Malformed m -> "malformed payload: " ^ m
  | Truncated -> "input ended mid-frame"
  | Trailing n -> Printf.sprintf "%d trailing bytes after frame" n

type outcome =
  | Logits of { queue_wait : float; service : float; data : float array }
  | Overloaded
  | Expired
  | Invalid of string
  | Closed
  | Failed of string
  | No_model
  | Unavailable of string

type msg =
  | Infer of {
      key : string;
      deadline : float option;
      dims : int array;
      data : float array;
    }
  | Infer_reply of outcome
  | Ping
  | Pong of {
      healthy : bool;
      queue_depth : int;
      capacity : int;
      draining : bool;
    }
  | Publish of {
      name : string;
      version : int;
      input_dims : int array;
      payload : string;
    }
  | Publish_reply of { ok : bool; reason : string }
  | Activate of { name : string; version : int }
  | Activate_reply of { ok : bool; reason : string }
  | Model_info of { name : string }
  | Model_info_reply of { active : int option; versions : int list }
  | Stats
  | Stats_reply of string
  | Drain
  | Drain_reply
  | Nack of string

let tag_of_msg = function
  | Infer _ -> 1
  | Infer_reply _ -> 2
  | Ping -> 3
  | Pong _ -> 4
  | Publish _ -> 5
  | Publish_reply _ -> 6
  | Activate _ -> 7
  | Activate_reply _ -> 8
  | Model_info _ -> 9
  | Model_info_reply _ -> 10
  | Stats -> 11
  | Stats_reply _ -> 12
  | Drain -> 13
  | Drain_reply -> 14
  | Nack _ -> 15

let known_tag t = t >= 1 && t <= 15

(* ------------------------------------------------------------ writers *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  w_u8 b v;
  w_u8 b (v lsr 8);
  w_u8 b (v lsr 16);
  w_u8 b (v lsr 24)

let w_i64 b v =
  for i = 0 to 7 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let w_f64 b f = w_i64 b (Int64.bits_of_float f)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_dims b dims =
  w_u8 b (Array.length dims);
  Array.iter (fun d -> w_u32 b d) dims

let w_farr b a =
  w_u32 b (Array.length a);
  Array.iter (fun f -> w_f64 b f) a

let w_opt_f64 b = function
  | None -> w_u8 b 0
  | Some f ->
      w_u8 b 1;
      w_f64 b f

let w_opt_u32 b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w_u32 b v

let w_u32_list b l =
  w_u32 b (List.length l);
  List.iter (fun v -> w_u32 b v) l

let outcome_tag = function
  | Logits _ -> 0
  | Overloaded -> 1
  | Expired -> 2
  | Invalid _ -> 3
  | Closed -> 4
  | Failed _ -> 5
  | No_model -> 6
  | Unavailable _ -> 7

let w_outcome b o =
  w_u8 b (outcome_tag o);
  match o with
  | Logits { queue_wait; service; data } ->
      w_f64 b queue_wait;
      w_f64 b service;
      w_farr b data
  | Overloaded | Expired | Closed | No_model -> ()
  | Invalid m | Failed m | Unavailable m -> w_str b m

let encode_payload b = function
  | Infer { key; deadline; dims; data } ->
      w_str b key;
      w_opt_f64 b deadline;
      w_dims b dims;
      w_farr b data
  | Infer_reply o -> w_outcome b o
  | Ping | Stats | Drain | Drain_reply -> ()
  | Pong { healthy; queue_depth; capacity; draining } ->
      w_bool b healthy;
      w_u32 b queue_depth;
      w_u32 b capacity;
      w_bool b draining
  | Publish { name; version; input_dims; payload } ->
      w_str b name;
      w_u32 b version;
      w_dims b input_dims;
      w_str b payload
  | Publish_reply { ok; reason } | Activate_reply { ok; reason } ->
      w_bool b ok;
      w_str b reason
  | Activate { name; version } ->
      w_str b name;
      w_u32 b version
  | Model_info { name } -> w_str b name
  | Model_info_reply { active; versions } ->
      w_opt_u32 b active;
      w_u32_list b versions
  | Stats_reply s | Nack s -> w_str b s

let encode ~id msg =
  let pb = Buffer.create 256 in
  encode_payload pb msg;
  let payload = Buffer.contents pb in
  let n = String.length payload in
  let b = Buffer.create (header_len + n + trailer_len) in
  Buffer.add_string b magic;
  w_u8 b version;
  w_u8 b (tag_of_msg msg);
  w_i64 b id;
  w_u32 b n;
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  w_u32 b (Crc32.digest_sub body ~pos:4 ~len:(String.length body - 4));
  Buffer.contents b

(* ------------------------------------------------------------ readers *)

exception Bad_payload of string

type reader = { src : string; mutable pos : int }

let r_need r n =
  if r.pos + n > String.length r.src then raise (Bad_payload "short payload")

let r_u8 r =
  r_need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  let a = r_u8 r in
  let b = r_u8 r in
  let c = r_u8 r in
  let d = r_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let r_i64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 r)) (8 * i))
  done;
  !v

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_str r =
  let n = r_u32 r in
  r_need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> raise (Bad_payload (Printf.sprintf "bad bool byte %d" v))

let r_dims r =
  let rank = r_u8 r in
  Array.init rank (fun _ -> r_u32 r)

let r_farr r =
  let n = r_u32 r in
  (* 8 bytes per element: bound before allocating. *)
  r_need r (8 * n);
  Array.init n (fun _ -> r_f64 r)

let r_opt_f64 r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (r_f64 r)
  | v -> raise (Bad_payload (Printf.sprintf "bad option byte %d" v))

let r_opt_u32 r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (r_u32 r)
  | v -> raise (Bad_payload (Printf.sprintf "bad option byte %d" v))

let r_u32_list r =
  let n = r_u32 r in
  r_need r (4 * n);
  List.init n (fun _ -> r_u32 r)

let r_outcome r =
  match r_u8 r with
  | 0 ->
      let queue_wait = r_f64 r in
      let service = r_f64 r in
      Logits { queue_wait; service; data = r_farr r }
  | 1 -> Overloaded
  | 2 -> Expired
  | 3 -> Invalid (r_str r)
  | 4 -> Closed
  | 5 -> Failed (r_str r)
  | 6 -> No_model
  | 7 -> Unavailable (r_str r)
  | t -> raise (Bad_payload (Printf.sprintf "bad outcome tag %d" t))

let decode_payload tag payload =
  let r = { src = payload; pos = 0 } in
  let msg =
    match tag with
    | 1 ->
        let key = r_str r in
        let deadline = r_opt_f64 r in
        let dims = r_dims r in
        Infer { key; deadline; dims; data = r_farr r }
    | 2 -> Infer_reply (r_outcome r)
    | 3 -> Ping
    | 4 ->
        let healthy = r_bool r in
        let queue_depth = r_u32 r in
        let capacity = r_u32 r in
        Pong { healthy; queue_depth; capacity; draining = r_bool r }
    | 5 ->
        let name = r_str r in
        let version = r_u32 r in
        let input_dims = r_dims r in
        Publish { name; version; input_dims; payload = r_str r }
    | 6 ->
        let ok = r_bool r in
        Publish_reply { ok; reason = r_str r }
    | 7 ->
        let name = r_str r in
        Activate { name; version = r_u32 r }
    | 8 ->
        let ok = r_bool r in
        Activate_reply { ok; reason = r_str r }
    | 9 -> Model_info { name = r_str r }
    | 10 ->
        let active = r_opt_u32 r in
        Model_info_reply { active; versions = r_u32_list r }
    | 11 -> Stats
    | 12 -> Stats_reply (r_str r)
    | 13 -> Drain
    | 14 -> Drain_reply
    | 15 -> Nack (r_str r)
    | _ -> assert false (* caller checked [known_tag] *)
  in
  if r.pos <> String.length payload then
    raise (Bad_payload "trailing bytes in payload");
  msg

(* ---------------------------------------------------- incremental decode *)

type decoder = {
  max_frame : int;
  pending : Buffer.t;
  mutable off : int; (* consumed prefix of [pending] *)
  mutable failed : error option;
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; pending = Buffer.create 4096; off = 0; failed = None }

let feed d ?(pos = 0) ?len s =
  if d.failed = None then
    let len = match len with Some l -> l | None -> String.length s - pos in
    Buffer.add_substring d.pending s pos len

let available d = Buffer.length d.pending - d.off

(* Drop the consumed prefix once it dominates the buffer, so a
   long-lived connection does not hold every frame it ever saw. *)
let compact d =
  if d.off > 0 && (available d = 0 || d.off > 1 lsl 20) then begin
    let rest = Buffer.sub d.pending d.off (available d) in
    Buffer.clear d.pending;
    Buffer.add_string d.pending rest;
    d.off <- 0
  end

let le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let next d =
  match d.failed with
  | Some e -> `Error e
  | None ->
      let fail e =
        d.failed <- Some e;
        `Error e
      in
      if available d < header_len then `Need_more
      else begin
        let hdr = Buffer.sub d.pending d.off header_len in
        if String.sub hdr 0 4 <> magic then fail Bad_magic
        else begin
          let v = Char.code hdr.[4] in
          if v <> version then fail (Unsupported_version v)
          else begin
            let len = le32 hdr 14 in
            if len > d.max_frame || len < 0 then
              fail (Oversized { len; limit = d.max_frame })
            else if available d < header_len + len + trailer_len then
              `Need_more
            else begin
              let total = header_len + len + trailer_len in
              let frame = Buffer.sub d.pending d.off total in
              let stored = le32 frame (header_len + len) in
              let computed =
                Crc32.digest_sub frame ~pos:4 ~len:(header_len + len - 4)
              in
              if stored <> computed then
                fail (Crc_mismatch { expected = stored; got = computed })
              else begin
                let tag = Char.code frame.[5] in
                if not (known_tag tag) then fail (Unknown_tag tag)
                else begin
                  let id = { src = frame; pos = 6 } |> r_i64 in
                  match decode_payload tag (String.sub frame header_len len) with
                  | exception Bad_payload m -> fail (Malformed m)
                  | msg ->
                      d.off <- d.off + total;
                      compact d;
                      `Frame (id, msg)
                end
              end
            end
          end
        end
      end

let decode_string ?max_frame s =
  let d = decoder ?max_frame () in
  feed d s;
  match next d with
  | `Frame f -> if available d > 0 then Error (Trailing (available d)) else Ok f
  | `Need_more -> Error Truncated
  | `Error e -> Error e

(* ------------------------------------------------------------------ io *)

let rec write_all fd b pos len =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len

let write_frame fd ~id msg =
  let s = encode ~id msg in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let io_chunk = 65536

let read_frame fd d =
  let buf = Bytes.create io_chunk in
  let rec loop () =
    match next d with
    | `Frame f -> Ok f
    | `Error e -> Error (`Error e)
    | `Need_more -> (
        match Unix.read fd buf 0 io_chunk with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | 0 -> if available d > 0 then Error (`Error Truncated) else Error `Eof
        | n ->
            feed d (Bytes.sub_string buf 0 n);
            loop ())
  in
  loop ()
