(* Consistent-hash router daemon.

   Ring: every shard endpoint contributes [vnodes] points, each the
   FNV-1a 64-bit hash of "<endpoint>#<i>", kept in one sorted array.  A
   key routes to the first point clockwise of its own hash (unsigned
   comparison, wrapping), and its failover candidates are the distinct
   endpoints met continuing clockwise — so removing a shard moves only
   the keys it owned, each to its next distinct neighbour.

   Serving: the router speaks the same Wire protocol as a shard (one
   accept thread, one handler thread per connection) and proxies [Infer]
   frames with [Shard_client.infer_raw], so a client cannot tell a
   router from a shard.  Each handler exchange checks a connection out
   of the target shard's small pool and returns it on success; any IO
   error both kills that connection and marks the shard [Dead] so other
   requests stop queueing behind a corpse.  Inference is idempotent —
   retrying a request whose shard died mid-flight on the next ring node
   is safe, and is exactly what keeps a SIGKILLed shard from losing
   acks in the chaos smoke. *)

type health = Healthy | Backpressured | Dead

let health_label = function
  | Healthy -> "healthy"
  | Backpressured -> "backpressured"
  | Dead -> "dead"

module Ring = struct
  let fnv_prime = 0x100000001b3L
  let fnv_basis = 0xcbf29ce484222325L

  let fnv1a64 s =
    let h = ref fnv_basis in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
      s;
    !h

  type t = {
    vnodes : int;
    eps : string list; (* sorted, distinct *)
    points : (int64 * string) array; (* sorted by unsigned point *)
  }

  let build vnodes eps =
    let points =
      List.concat_map
        (fun ep ->
          List.init vnodes (fun i ->
              (fnv1a64 (Printf.sprintf "%s#%d" ep i), ep)))
        eps
      |> Array.of_list
    in
    Array.sort
      (fun (a, ea) (b, eb) ->
        let c = Int64.unsigned_compare a b in
        if c <> 0 then c else compare ea eb)
      points;
    { vnodes; eps; points }

  let create ?(vnodes = 64) eps =
    if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
    build vnodes (List.sort_uniq compare eps)

  let endpoints t = t.eps

  (* Index of the first point with hash >= h (unsigned), wrapping to 0. *)
  let successor_index t h =
    let n = Array.length t.points in
    if n = 0 then -1
    else begin
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
        else hi := mid
      done;
      if !lo = n then 0 else !lo
    end

  let route t key =
    let i = successor_index t (fnv1a64 key) in
    if i < 0 then None else Some (snd t.points.(i))

  let successors t key =
    let n = Array.length t.points in
    if n = 0 then []
    else begin
      let start = successor_index t (fnv1a64 key) in
      let want = List.length t.eps in
      let seen = Hashtbl.create want and order = ref [] in
      let i = ref 0 in
      while Hashtbl.length seen < want && !i < n do
        let ep = snd t.points.((start + !i) mod n) in
        if not (Hashtbl.mem seen ep) then begin
          Hashtbl.add seen ep ();
          order := ep :: !order
        end;
        incr i
      done;
      List.rev !order
    end

  let add t ep = build t.vnodes (List.sort_uniq compare (ep :: t.eps))
  let remove t ep = build t.vnodes (List.filter (( <> ) ep) t.eps)
end

type config = {
  vnodes : int;
  heartbeat_interval : float;
  connect_timeout : float;
  pool : int;
}

let default_config =
  { vnodes = 64; heartbeat_interval = 0.25; connect_timeout = 10.0; pool = 4 }

type shard = {
  sh_endpoint : string;
  sh_mutex : Mutex.t;
  mutable sh_health : health;
  mutable sh_pool : Shard_client.t list;
}

type t = {
  r_path : string;
  r_config : config;
  r_ring : Ring.t;
  r_shards : (string * shard) list; (* input order *)
  r_listen : Unix.file_descr;
  r_mutex : Mutex.t;
  mutable r_conns : (Unix.file_descr * Thread.t) list;
  mutable r_accept : Thread.t option;
  mutable r_heartbeat : Thread.t option;
  mutable r_accepting : bool;
  mutable r_draining : bool;
  mutable r_stopped : bool;
  c_routed : Metrics.Counter.t;
  c_failovers : Metrics.Counter.t;
  c_spills : Metrics.Counter.t;
  c_unavailable : Metrics.Counter.t;
  c_unhealthy : Metrics.Counter.t;
  c_recoveries : Metrics.Counter.t;
  c_connections : Metrics.Counter.t;
  c_frames_in : Metrics.Counter.t;
  c_frames_out : Metrics.Counter.t;
  c_decode_errors : Metrics.Counter.t;
}

(* --- health ------------------------------------------------------- *)

let set_health t sh h =
  Mutex.lock sh.sh_mutex;
  let old = sh.sh_health in
  sh.sh_health <- h;
  Mutex.unlock sh.sh_mutex;
  if old <> h then begin
    if h = Dead then Metrics.Counter.incr t.c_unhealthy;
    if h = Healthy && old = Dead then Metrics.Counter.incr t.c_recoveries
  end

let get_health sh =
  Mutex.lock sh.sh_mutex;
  let h = sh.sh_health in
  Mutex.unlock sh.sh_mutex;
  h

(* --- per-shard connection pool ------------------------------------ *)

let checkout t sh =
  Mutex.lock sh.sh_mutex;
  let c =
    match sh.sh_pool with
    | c :: rest ->
        sh.sh_pool <- rest;
        Some c
    | [] -> None
  in
  Mutex.unlock sh.sh_mutex;
  match c with
  | Some c -> Ok c
  | None -> Shard_client.connect ~timeout:t.r_config.connect_timeout sh.sh_endpoint

let checkin t sh c =
  Mutex.lock sh.sh_mutex;
  let keep = List.length sh.sh_pool < t.r_config.pool in
  if keep then sh.sh_pool <- c :: sh.sh_pool;
  Mutex.unlock sh.sh_mutex;
  if not keep then Shard_client.close c

let drop_pool sh =
  Mutex.lock sh.sh_mutex;
  let pool = sh.sh_pool in
  sh.sh_pool <- [];
  Mutex.unlock sh.sh_mutex;
  List.iter Shard_client.close pool

(* --- infer proxy path --------------------------------------------- *)

(* One attempt against one shard.  [`Final] outcomes are returned to the
   client as-is; [`Spill] (typed backpressure, drain, missing model)
   and [`Dead] (transport failure) move on to the next ring node. *)
let attempt t sh ~deadline ~key ~dims ~data =
  match checkout t sh with
  | Error _ ->
      set_health t sh Dead;
      `Dead
  | Ok c -> (
      match Shard_client.infer_raw ?deadline ~key ~dims ~data c with
      | Error (Shard_client.Connect _ | Shard_client.Io _
              | Shard_client.Decode _ | Shard_client.Unexpected_reply _) ->
          Shard_client.close c;
          set_health t sh Dead;
          `Dead
      | Error (Shard_client.Remote _) ->
          checkin t sh c;
          `Spill Wire.Closed
      | Ok { outcome; _ } -> (
          checkin t sh c;
          match outcome with
          | Wire.Overloaded ->
              set_health t sh Backpressured;
              `Spill Wire.Overloaded
          | Wire.Closed | Wire.No_model | Wire.Unavailable _ ->
              `Spill outcome
          | Wire.Logits _ | Wire.Expired | Wire.Invalid _ | Wire.Failed _ ->
              if get_health sh = Backpressured then set_health t sh Healthy;
              `Final outcome))

let route_infer t ~deadline ~key ~dims ~data =
  Metrics.Counter.incr t.c_routed;
  let candidates = Ring.successors t.r_ring key in
  (* Live shards first, in ring order; dead-marked shards are kept at
     the tail as last-resort probes, so a fleet the heartbeat has not
     re-scanned yet (or has wrongly written off) still gets one chance
     before the client sees Unavailable.  A successful probe also
     resurrects the shard ahead of the next heartbeat sweep. *)
  let live, dead =
    List.partition
      (fun ep -> get_health (List.assoc ep t.r_shards) <> Dead)
      candidates
  in
  let rec go best_spill tried = function
    | [] -> (
        Metrics.Counter.incr t.c_unavailable;
        match best_spill with
        | Some o -> o
        | None ->
            Wire.Unavailable
              (Printf.sprintf "no live shard for key (%d tried)" tried))
    | ep :: rest -> (
        let sh = List.assoc ep t.r_shards in
        match attempt t sh ~deadline ~key ~dims ~data with
        | `Final o ->
            if tried > 0 then Metrics.Counter.incr t.c_failovers;
            if get_health sh = Dead then set_health t sh Healthy;
            o
        | `Dead ->
            Metrics.Counter.incr t.c_failovers;
            go best_spill (tried + 1) rest
        | `Spill o ->
            Metrics.Counter.incr t.c_spills;
            let best =
              (* Prefer reporting backpressure over drain/missing
                 model: it tells the client to back off, not give up. *)
              match (best_spill, o) with
              | Some Wire.Overloaded, _ -> Some Wire.Overloaded
              | _, o -> Some o
            in
            go best (tried + 1) rest)
  in
  go None 0 (live @ dead)

(* --- wire front-end ----------------------------------------------- *)

let counters t =
  [
    ("routed", Metrics.Counter.value t.c_routed);
    ("failovers", Metrics.Counter.value t.c_failovers);
    ("spills", Metrics.Counter.value t.c_spills);
    ("unavailable", Metrics.Counter.value t.c_unavailable);
    ("unhealthy_transitions", Metrics.Counter.value t.c_unhealthy);
    ("recoveries", Metrics.Counter.value t.c_recoveries);
  ]

let shard_health t =
  List.map (fun (ep, sh) -> (ep, get_health sh)) t.r_shards

let stats_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n  \"shards\": [";
  List.iteri
    (fun i (ep, h) ->
      Buffer.add_string b
        (Printf.sprintf "%s{\"endpoint\": %S, \"health\": %S}"
           (if i = 0 then "" else ", ")
           ep (health_label h)))
    (shard_health t);
  Buffer.add_string b "],\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ") name v))
    (counters t);
  Buffer.add_string b
    (Printf.sprintf
       "},\n\
       \  \"wire\": {\"connections\": %d, \"frames_in\": %d, \"frames_out\": \
        %d, \"decode_errors\": %d}\n\
        }\n"
       (Metrics.Counter.value t.c_connections)
       (Metrics.Counter.value t.c_frames_in)
       (Metrics.Counter.value t.c_frames_out)
       (Metrics.Counter.value t.c_decode_errors));
  Buffer.contents b

let handle_msg t msg =
  match msg with
  | Wire.Infer { key; deadline; dims; data } ->
      if t.r_draining then Wire.Infer_reply Wire.Closed
      else Wire.Infer_reply (route_infer t ~deadline ~key ~dims ~data)
  | Wire.Ping ->
      let healthy =
        List.exists (fun (_, h) -> h = Healthy) (shard_health t)
      in
      Wire.Pong
        { healthy; queue_depth = 0; capacity = 0; draining = t.r_draining }
  | Wire.Stats -> Wire.Stats_reply (stats_json t)
  | Wire.Drain ->
      t.r_draining <- true;
      Wire.Drain_reply
  | Wire.Publish _ | Wire.Activate _ | Wire.Model_info _ ->
      Wire.Nack "publish/activate go directly to shard endpoints"
  | Wire.Infer_reply _ | Wire.Pong _ | Wire.Publish_reply _
  | Wire.Activate_reply _ | Wire.Model_info_reply _ | Wire.Stats_reply _
  | Wire.Drain_reply | Wire.Nack _ ->
      Wire.Nack "router expects requests, not replies"

let unregister_conn t fd =
  Mutex.lock t.r_mutex;
  t.r_conns <- List.filter (fun (fd', _) -> fd' != fd) t.r_conns;
  Mutex.unlock t.r_mutex

let handle_conn t fd =
  let dec = Wire.decoder () in
  let rec loop () =
    match Wire.read_frame fd dec with
    | exception Unix.Unix_error (_, _, _) -> ()
    | Error `Eof -> ()
    | Error (`Error _) -> Metrics.Counter.incr t.c_decode_errors
    | Ok (id, msg) -> (
        Metrics.Counter.incr t.c_frames_in;
        match Wire.write_frame fd ~id (handle_msg t msg) with
        | () ->
            Metrics.Counter.incr t.c_frames_out;
            loop ()
        | exception Unix.Unix_error (_, _, _) -> ())
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  unregister_conn t fd

let accept_loop t =
  let rec loop () =
    if t.r_accepting then
      match Unix.select [ t.r_listen ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept t.r_listen with
          | exception Unix.Unix_error (_, _, _) -> if t.r_accepting then loop ()
          | fd, _ ->
              Metrics.Counter.incr t.c_connections;
              Mutex.lock t.r_mutex;
              if t.r_accepting then begin
                let th = Thread.create (fun () -> handle_conn t fd) () in
                t.r_conns <- (fd, th) :: t.r_conns;
                Mutex.unlock t.r_mutex;
                loop ()
              end
              else begin
                Mutex.unlock t.r_mutex;
                try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
              end)
  in
  loop ()

(* Health sweep: one fresh short-timeout ping per shard per interval.
   The ping deliberately bypasses the pool — a pooled connection to a
   dead shard would just burn the timeout twice. *)
let heartbeat_loop t =
  let interval = t.r_config.heartbeat_interval in
  let timeout = Float.max 0.05 (Float.min t.r_config.connect_timeout 2.0) in
  while t.r_accepting do
    List.iter
      (fun (_, sh) ->
        if t.r_accepting then
          match Shard_client.connect ~timeout sh.sh_endpoint with
          | Error _ ->
              set_health t sh Dead;
              drop_pool sh
          | Ok c ->
              (match Shard_client.ping c with
              | Ok (Wire.Pong { healthy = true; draining = false; _ }) ->
                  (* Keep a Backpressured mark until traffic succeeds;
                     the ping only proves liveness, not headroom. *)
                  if get_health sh = Dead then set_health t sh Healthy
              | Ok _ | Error _ ->
                  set_health t sh Dead;
                  drop_pool sh);
              Shard_client.close c)
      t.r_shards;
    (* Sleep in small slices so stop() is prompt. *)
    let slept = ref 0.0 in
    while t.r_accepting && !slept < interval do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

let start ?(config = default_config) ~shards ~path () =
  if shards = [] then Error "router needs at least one shard endpoint"
  else begin
    (try if Sys.file_exists path then Unix.unlink path
     with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd -> (
        match
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 64
        with
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
        | () ->
            let t =
              {
                r_path = path;
                r_config = config;
                r_ring = Ring.create ~vnodes:config.vnodes shards;
                r_shards =
                  List.map
                    (fun ep ->
                      ( ep,
                        {
                          sh_endpoint = ep;
                          sh_mutex = Mutex.create ();
                          sh_health = Healthy;
                          sh_pool = [];
                        } ))
                    shards;
                r_listen = fd;
                r_mutex = Mutex.create ();
                r_conns = [];
                r_accept = None;
                r_heartbeat = None;
                r_accepting = true;
                r_draining = false;
                r_stopped = false;
                c_routed = Metrics.Counter.create "routed";
                c_failovers = Metrics.Counter.create "failovers";
                c_spills = Metrics.Counter.create "spills";
                c_unavailable = Metrics.Counter.create "unavailable";
                c_unhealthy = Metrics.Counter.create "unhealthy_transitions";
                c_recoveries = Metrics.Counter.create "recoveries";
                c_connections = Metrics.Counter.create "connections";
                c_frames_in = Metrics.Counter.create "frames_in";
                c_frames_out = Metrics.Counter.create "frames_out";
                c_decode_errors = Metrics.Counter.create "decode_errors";
              }
            in
            t.r_accept <- Some (Thread.create (fun () -> accept_loop t) ());
            t.r_heartbeat <-
              Some (Thread.create (fun () -> heartbeat_loop t) ());
            Ok t)
  end

let path t = t.r_path

let stop t =
  Mutex.lock t.r_mutex;
  let already = t.r_stopped in
  t.r_stopped <- true;
  t.r_draining <- true;
  t.r_accepting <- false;
  Mutex.unlock t.r_mutex;
  if not already then begin
    (match t.r_accept with
    | Some th ->
        t.r_accept <- None;
        Thread.join th
    | None -> ());
    (match t.r_heartbeat with
    | Some th ->
        t.r_heartbeat <- None;
        Thread.join th
    | None -> ());
    (try Unix.close t.r_listen with Unix.Unix_error (_, _, _) -> ());
    (try Unix.unlink t.r_path
     with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
    Mutex.lock t.r_mutex;
    let conns = t.r_conns in
    Mutex.unlock t.r_mutex;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error (_, _, _) -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    List.iter (fun (_, sh) -> drop_pool sh) t.r_shards
  end

let wait t =
  match t.r_accept with Some th -> Thread.join th | None -> ()
