(* Consistent-hash router daemon.

   Ring: every shard endpoint contributes [vnodes] points, each the
   FNV-1a 64-bit hash of "<endpoint>#<i>", kept in one sorted array.  A
   key routes to the first point clockwise of its own hash (unsigned
   comparison, wrapping), and its failover candidates are the distinct
   endpoints met continuing clockwise — so removing a shard moves only
   the keys it owned, each to its next distinct neighbour.

   Serving: the router speaks the same Wire protocol as a shard (one
   accept thread, one handler thread per connection) and proxies [Infer]
   frames with [Shard_client.infer_raw], so a client cannot tell a
   router from a shard.  Each handler exchange checks a connection out
   of the target shard's small pool and returns it on success; any IO
   error both kills that connection and marks the shard [Dead] so other
   requests stop queueing behind a corpse.  Inference is idempotent —
   retrying a request whose shard died mid-flight on the next ring node
   is safe, and is exactly what keeps a SIGKILLed shard from losing
   acks in the chaos smoke.

   Resilience (PR 8): every forward consults a per-shard circuit
   breaker (closed → open after K consecutive transport failures →
   half-open probe after a cooldown), each request carries a retry
   budget with decorrelated-jitter backoff instead of one transparent
   retry, the relative deadline is re-derived from the monotonic clock
   before every hop so shards never batch work whose budget upstream
   queueing already spent, and (opt-in) a hedge races a second shard
   after a p99-derived delay.  All timing is [Mclock]; the wall clock
   appears nowhere on the request path. *)

module Mclock = Twq_util.Mclock

type health = Healthy | Backpressured | Dead

let health_label = function
  | Healthy -> "healthy"
  | Backpressured -> "backpressured"
  | Dead -> "dead"

module Ring = struct
  let fnv_prime = 0x100000001b3L
  let fnv_basis = 0xcbf29ce484222325L

  (* murmur3's fmix64 finalizer.  Raw FNV-1a has weak avalanche on the
     trailing bytes of short, near-identical strings — the 64 vnode
     names "<endpoint>#0".."<endpoint>#63" differ only in their suffix,
     so without this their points cluster into one tight arc per
     endpoint and a single shard can own essentially the whole key
     space (observed: one shard owning 20/20 test keys). *)
  let mix64 h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)

  let fnv1a64 s =
    let h = ref fnv_basis in
    String.iter
      (fun c ->
        h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
      s;
    mix64 !h

  type t = {
    vnodes : int;
    eps : string list; (* sorted, distinct *)
    points : (int64 * string) array; (* sorted by unsigned point *)
  }

  let build vnodes eps =
    let points =
      List.concat_map
        (fun ep ->
          List.init vnodes (fun i ->
              (fnv1a64 (Printf.sprintf "%s#%d" ep i), ep)))
        eps
      |> Array.of_list
    in
    Array.sort
      (fun (a, ea) (b, eb) ->
        let c = Int64.unsigned_compare a b in
        if c <> 0 then c else compare ea eb)
      points;
    { vnodes; eps; points }

  let create ?(vnodes = 64) eps =
    if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
    build vnodes (List.sort_uniq compare eps)

  let endpoints t = t.eps

  (* Index of the first point with hash >= h (unsigned), wrapping to 0. *)
  let successor_index t h =
    let n = Array.length t.points in
    if n = 0 then -1
    else begin
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
        else hi := mid
      done;
      if !lo = n then 0 else !lo
    end

  let route t key =
    let i = successor_index t (fnv1a64 key) in
    if i < 0 then None else Some (snd t.points.(i))

  let successors t key =
    let n = Array.length t.points in
    if n = 0 then []
    else begin
      let start = successor_index t (fnv1a64 key) in
      let want = List.length t.eps in
      let seen = Hashtbl.create want and order = ref [] in
      let i = ref 0 in
      while Hashtbl.length seen < want && !i < n do
        let ep = snd t.points.((start + !i) mod n) in
        if not (Hashtbl.mem seen ep) then begin
          Hashtbl.add seen ep ();
          order := ep :: !order
        end;
        incr i
      done;
      List.rev !order
    end

  let add t ep = build t.vnodes (List.sort_uniq compare (ep :: t.eps))
  let remove t ep = build t.vnodes (List.filter (( <> ) ep) t.eps)
end

(* Per-shard circuit breaker.  Closed counts consecutive transport
   failures and trips at K; Open rejects everything until [cooldown]
   has elapsed, then grants exactly one probe (Half_open); the probe's
   verdict closes or re-opens the breaker.  A probe that never reports
   back (lost thread, dropped reply) re-arms after another cooldown, so
   a silent probe cannot wedge the breaker shut forever.  Callers pass
   [now] explicitly (monotonic seconds) so the state machine is unit-
   testable without sleeping. *)
module Breaker = struct
  type state = Closed | Open | Half_open

  let state_label = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half-open"

  type t = {
    failures : int; (* K consecutive failures to trip *)
    cooldown : float; (* seconds open before a probe *)
    mu : Mutex.t;
    mutable st : state;
    mutable consecutive : int;
    mutable since : float; (* entered Open / probe granted *)
  }

  let create ?(failures = 5) ?(cooldown = 1.0) () =
    if failures < 1 then invalid_arg "Breaker.create: failures < 1";
    if cooldown < 0.0 then invalid_arg "Breaker.create: cooldown < 0";
    {
      failures;
      cooldown;
      mu = Mutex.create ();
      st = Closed;
      consecutive = 0;
      since = 0.0;
    }

  let state t =
    Mutex.lock t.mu;
    let s = t.st in
    Mutex.unlock t.mu;
    s

  let admit t ~now =
    Mutex.lock t.mu;
    let v =
      match t.st with
      | Closed -> `Yes
      | Open ->
          if now -. t.since >= t.cooldown then begin
            t.st <- Half_open;
            t.since <- now;
            `Probe
          end
          else `No
      | Half_open ->
          if now -. t.since >= t.cooldown then begin
            (* The previous probe went silent; grant another. *)
            t.since <- now;
            `Probe
          end
          else `No
    in
    Mutex.unlock t.mu;
    v

  let success t =
    Mutex.lock t.mu;
    let r =
      match t.st with
      | Closed ->
          t.consecutive <- 0;
          `Stayed
      | Half_open ->
          t.st <- Closed;
          t.consecutive <- 0;
          `Closed_now
      | Open ->
          (* A straggler from before the trip; only a probe may close. *)
          `Stayed
    in
    Mutex.unlock t.mu;
    r

  let failure t ~now =
    Mutex.lock t.mu;
    let r =
      match t.st with
      | Closed ->
          t.consecutive <- t.consecutive + 1;
          if t.consecutive >= t.failures then begin
            t.st <- Open;
            t.since <- now;
            `Opened
          end
          else `Stayed
      | Half_open ->
          t.st <- Open;
          t.since <- now;
          `Opened
      | Open -> `Stayed
    in
    Mutex.unlock t.mu;
    r
end

type config = {
  vnodes : int;
  heartbeat_interval : float;
  connect_timeout : float;
  pool : int;
  retry : Retry.policy; (* per-request attempt budget *)
  breaker_failures : int; (* K consecutive failures to trip *)
  breaker_cooldown : float; (* seconds open before half-open probe *)
  hedge : bool; (* race a second shard on slow requests *)
  hedge_floor : float; (* minimum hedge delay, seconds *)
  seed : int; (* retry-jitter seed *)
}

let default_config =
  {
    vnodes = 64;
    heartbeat_interval = 0.25;
    (* 2 s, not 10: the data path's connect timeout must stay within
       the same order as the heartbeat, or a black-holed endpoint
       wedges handler threads long after the sweep called it dead. *)
    connect_timeout = 2.0;
    pool = 4;
    retry = Retry.default;
    breaker_failures = 5;
    breaker_cooldown = 1.0;
    hedge = false;
    hedge_floor = 0.01;
    seed = 0;
  }

type shard = {
  sh_endpoint : string;
  sh_mutex : Mutex.t;
  sh_breaker : Breaker.t;
  mutable sh_health : health;
  mutable sh_pool : Shard_client.t list;
}

type t = {
  r_path : string;
  r_config : config;
  r_ring : Ring.t;
  r_shards : (string * shard) list; (* input order *)
  r_listen : Unix.file_descr;
  r_mutex : Mutex.t;
  mutable r_conns : (Unix.file_descr * Thread.t) list;
  mutable r_accept : Thread.t option;
  mutable r_heartbeat : Thread.t option;
  mutable r_accepting : bool;
  mutable r_draining : bool;
  mutable r_stopped : bool;
  r_reqseq : int Atomic.t; (* per-request retry-jitter streams *)
  h_attempt_latency : Metrics.Histogram.t; (* feeds the hedge delay *)
  c_routed : Metrics.Counter.t;
  c_failovers : Metrics.Counter.t;
  c_spills : Metrics.Counter.t;
  c_unavailable : Metrics.Counter.t;
  c_unhealthy : Metrics.Counter.t;
  c_recoveries : Metrics.Counter.t;
  c_retries : Metrics.Counter.t;
  c_hedges : Metrics.Counter.t;
  c_hedge_wins : Metrics.Counter.t;
  c_breaker_opens : Metrics.Counter.t;
  c_breaker_probes : Metrics.Counter.t;
  c_breaker_closes : Metrics.Counter.t;
  c_deadline_rejected : Metrics.Counter.t;
  c_connections : Metrics.Counter.t;
  c_frames_in : Metrics.Counter.t;
  c_frames_out : Metrics.Counter.t;
  c_decode_errors : Metrics.Counter.t;
}

(* --- health ------------------------------------------------------- *)

let set_health t sh h =
  Mutex.lock sh.sh_mutex;
  let old = sh.sh_health in
  sh.sh_health <- h;
  Mutex.unlock sh.sh_mutex;
  if old <> h then begin
    if h = Dead then Metrics.Counter.incr t.c_unhealthy;
    if h = Healthy && old = Dead then Metrics.Counter.incr t.c_recoveries
  end

let get_health sh =
  Mutex.lock sh.sh_mutex;
  let h = sh.sh_health in
  Mutex.unlock sh.sh_mutex;
  h

(* --- per-shard connection pool ------------------------------------ *)

let checkout t sh =
  Mutex.lock sh.sh_mutex;
  let c =
    match sh.sh_pool with
    | c :: rest ->
        sh.sh_pool <- rest;
        Some c
    | [] -> None
  in
  Mutex.unlock sh.sh_mutex;
  match c with
  | Some c -> Ok c
  | None -> Shard_client.connect ~timeout:t.r_config.connect_timeout sh.sh_endpoint

let checkin t sh c =
  Mutex.lock sh.sh_mutex;
  (* After stop, hedge losers may still be completing; close rather
     than repopulate a pool nobody will drain again. *)
  let keep = t.r_accepting && List.length sh.sh_pool < t.r_config.pool in
  if keep then sh.sh_pool <- c :: sh.sh_pool;
  Mutex.unlock sh.sh_mutex;
  if not keep then Shard_client.close c

let drop_pool sh =
  Mutex.lock sh.sh_mutex;
  let pool = sh.sh_pool in
  sh.sh_pool <- [];
  Mutex.unlock sh.sh_mutex;
  List.iter Shard_client.close pool

(* --- infer proxy path --------------------------------------------- *)

let breaker_failure t sh =
  match Breaker.failure sh.sh_breaker ~now:(Mclock.now ()) with
  | `Opened -> Metrics.Counter.incr t.c_breaker_opens
  | `Stayed -> ()

let breaker_success t sh =
  match Breaker.success sh.sh_breaker with
  | `Closed_now -> Metrics.Counter.incr t.c_breaker_closes
  | `Stayed -> ()

(* One attempt against one shard.  [`Final] outcomes are returned to the
   client as-is; [`Spill] (typed backpressure, drain, missing model)
   and [`Dead] (transport failure) move on to the next ring node.
   Transport failures feed the shard's breaker; any typed reply —
   including backpressure — proves the transport works and feeds
   success. *)
let attempt t sh ~deadline ~key ~dims ~data =
  match checkout t sh with
  | Error _ ->
      breaker_failure t sh;
      set_health t sh Dead;
      `Dead
  | Ok c -> (
      match Shard_client.infer_raw ?deadline ~key ~dims ~data c with
      | Error (Shard_client.Connect _ | Shard_client.Io _
              | Shard_client.Decode _ | Shard_client.Unexpected_reply _) ->
          Shard_client.close c;
          breaker_failure t sh;
          set_health t sh Dead;
          `Dead
      | Error (Shard_client.Remote _) ->
          checkin t sh c;
          breaker_success t sh;
          `Spill Wire.Closed
      | Ok { outcome; wire_latency } -> (
          checkin t sh c;
          breaker_success t sh;
          Metrics.Histogram.observe t.h_attempt_latency wire_latency;
          match outcome with
          | Wire.Overloaded ->
              set_health t sh Backpressured;
              `Spill Wire.Overloaded
          | Wire.Closed | Wire.No_model | Wire.Unavailable _ ->
              `Spill outcome
          | Wire.Logits _ | Wire.Expired | Wire.Invalid _ | Wire.Failed _ ->
              if get_health sh = Backpressured then set_health t sh Healthy;
              `Final outcome))

(* Hedge delay: p99 of observed attempt latency once there is enough
   signal, never below the configured floor. *)
let hedge_delay t =
  if Metrics.Histogram.count t.h_attempt_latency >= 20 then
    Float.max t.r_config.hedge_floor
      (Metrics.Histogram.quantile t.h_attempt_latency 0.99)
  else t.r_config.hedge_floor

(* Race two shards for one request: launch [a]; if it has not answered
   within the hedge delay, launch [b]; first [`Final] wins.  The loser
   is not cancelled (blocking IO cannot be) — it runs to completion on
   its thread, its verdict still feeds health and breaker state, and
   only its reply is discarded.  Returns the winning outcome, or the
   non-final verdicts seen so far so the caller's retry walk can take
   over. *)
let hedged_pair t ~remaining ~key ~dims ~data a b =
  let mu = Mutex.create () in
  let final = ref None in
  let nonfinal = ref [] in
  let finished = ref 0 in
  let launch ~second ep =
    ignore
      (Thread.create
         (fun () ->
           let sh = List.assoc ep t.r_shards in
           let r = attempt t sh ~deadline:(remaining ()) ~key ~dims ~data in
           Mutex.lock mu;
           incr finished;
           (match r with
           | `Final o -> if !final = None then final := Some (o, ep, second)
           | (`Dead | `Spill _) as v -> nonfinal := v :: !nonfinal);
           Mutex.unlock mu)
         ())
  in
  let poll () =
    Mutex.lock mu;
    let s = (!final, !finished) in
    Mutex.unlock mu;
    s
  in
  launch ~second:false a;
  let delay = hedge_delay t in
  let t0 = Mclock.now () in
  let rec wait_primary () =
    match poll () with
    | (Some _, _ | _, 1) -> ()
    | _ ->
        if Mclock.elapsed t0 < delay then begin
          Thread.delay 0.0005;
          wait_primary ()
        end
  in
  wait_primary ();
  let hedged =
    match poll () with
    | None, 0 ->
        (* Primary still in flight past the delay: hedge. *)
        Metrics.Counter.incr t.c_hedges;
        launch ~second:true b;
        true
    | _ -> false
  in
  let want = if hedged then 2 else 1 in
  let rec wait_any () =
    match poll () with
    | Some _, _ -> ()
    | None, n when n >= want -> ()
    | _ ->
        Thread.delay 0.0005;
        wait_any ()
  in
  wait_any ();
  Mutex.lock mu;
  let result = (!final, !nonfinal) in
  Mutex.unlock mu;
  match result with
  | Some (o, ep, second), _ ->
      if second then Metrics.Counter.incr t.c_hedge_wins;
      `Won (o, ep)
  | None, seen -> `Lost seen

let route_infer t ~deadline ~key ~dims ~data =
  Metrics.Counter.incr t.c_routed;
  let t0 = Mclock.now () in
  (* The wire deadline is a relative budget; re-derive what is left of
     it before every hop so elapsed routing/backoff time is deducted
     rather than silently granted again downstream. *)
  let remaining () =
    match deadline with None -> None | Some b -> Some (b -. Mclock.elapsed t0)
  in
  let expired () =
    match remaining () with Some r -> r <= 0.0 | None -> false
  in
  let candidates = Ring.successors t.r_ring key in
  (* Live shards first, in ring order; dead-marked shards are kept at
     the tail as last-resort probes, so a fleet the heartbeat has not
     re-scanned yet (or has wrongly written off) still gets one chance
     before the client sees Unavailable.  A successful probe also
     resurrects the shard ahead of the next heartbeat sweep. *)
  let order () =
    let live, dead =
      List.partition
        (fun ep -> get_health (List.assoc ep t.r_shards) <> Dead)
        candidates
    in
    live @ dead
  in
  let retry =
    Retry.start
      ~seed:(t.r_config.seed + Atomic.fetch_and_add t.r_reqseq 1)
      t.r_config.retry
  in
  (* Every attempt after the first draws on the retry budget and pays
     its jittered backoff (clipped to the remaining deadline). *)
  let first = ref true in
  let grant () =
    if !first then begin
      first := false;
      true
    end
    else
      match Retry.next retry with
      | None -> false
      | Some sleep ->
          Metrics.Counter.incr t.c_retries;
          let sleep =
            match remaining () with
            | Some r -> Float.min sleep (Float.max 0.0 (r -. 0.001))
            | None -> sleep
          in
          if sleep > 0.0 then Thread.delay sleep;
          true
  in
  let best = ref None in
  let tried = ref 0 in
  let merge o =
    (* Prefer reporting backpressure over drain/missing model: it tells
       the client to back off, not give up. *)
    best :=
      (match (!best, o) with
      | Some Wire.Overloaded, _ -> Some Wire.Overloaded
      | _, o -> Some o)
  in
  let fail o =
    incr tried;
    match o with
    | `Dead -> Metrics.Counter.incr t.c_failovers
    | `Spill o ->
        Metrics.Counter.incr t.c_spills;
        merge o
  in
  let unavailable () =
    Metrics.Counter.incr t.c_unavailable;
    match !best with
    | Some o -> o
    | None ->
        Wire.Unavailable
          (Printf.sprintf "no live shard for key (%d tried)" !tried)
  in
  let deadline_spent () =
    Metrics.Counter.incr t.c_deadline_rejected;
    Wire.Expired
  in
  let finalize sh o =
    if !tried > 0 then Metrics.Counter.incr t.c_failovers;
    if get_health sh = Dead then set_health t sh Healthy;
    o
  in
  (* One pass over the candidates; [`Blocked] = breaker rejected every
     shard without a single attempt, [`Budget] = retry budget ran dry. *)
  let rec walk made = function
    | [] -> if made then `Again else `Blocked
    | ep :: rest ->
        if expired () then `Done (deadline_spent ())
        else begin
          let sh = List.assoc ep t.r_shards in
          match Breaker.admit sh.sh_breaker ~now:(Mclock.now ()) with
          | `No -> walk made rest
          | (`Yes | `Probe) as adm ->
              if not (grant ()) then `Budget
              else begin
                if adm = `Probe then
                  Metrics.Counter.incr t.c_breaker_probes;
                match attempt t sh ~deadline:(remaining ()) ~key ~dims ~data with
                | `Final o -> `Done (finalize sh o)
                | (`Dead | `Spill _) as v ->
                    fail v;
                    walk true rest
              end
        end
  in
  let rec cycle () =
    match walk false (order ()) with
    | `Done o -> o
    | `Budget | `Blocked -> unavailable ()
    | `Again ->
        (* Something was attempted and everything failed; the budget
           decides whether another sweep is worth it. *)
        cycle ()
  in
  if expired () then deadline_spent ()
  else if t.r_config.hedge then begin
    match order () with
    | a :: b :: _ when grant () -> (
        match hedged_pair t ~remaining ~key ~dims ~data a b with
        | `Won (o, winner) -> finalize (List.assoc winner t.r_shards) o
        | `Lost seen ->
            List.iter fail seen;
            cycle ())
    | _ -> cycle ()
  end
  else cycle ()

(* --- wire front-end ----------------------------------------------- *)

let counters t =
  [
    ("routed", Metrics.Counter.value t.c_routed);
    ("failovers", Metrics.Counter.value t.c_failovers);
    ("spills", Metrics.Counter.value t.c_spills);
    ("unavailable", Metrics.Counter.value t.c_unavailable);
    ("unhealthy_transitions", Metrics.Counter.value t.c_unhealthy);
    ("recoveries", Metrics.Counter.value t.c_recoveries);
    ("retries", Metrics.Counter.value t.c_retries);
    ("hedges", Metrics.Counter.value t.c_hedges);
    ("hedge_wins", Metrics.Counter.value t.c_hedge_wins);
    ("breaker_opens", Metrics.Counter.value t.c_breaker_opens);
    ("breaker_probes", Metrics.Counter.value t.c_breaker_probes);
    ("breaker_closes", Metrics.Counter.value t.c_breaker_closes);
    ("deadline_rejected", Metrics.Counter.value t.c_deadline_rejected);
  ]

let shard_health t =
  List.map (fun (ep, sh) -> (ep, get_health sh)) t.r_shards

let breakers t =
  List.map (fun (ep, sh) -> (ep, Breaker.state sh.sh_breaker)) t.r_shards

let stats_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n  \"shards\": [";
  List.iteri
    (fun i (ep, sh) ->
      Buffer.add_string b
        (Printf.sprintf "%s{\"endpoint\": %S, \"health\": %S, \"breaker\": %S}"
           (if i = 0 then "" else ", ")
           ep
           (health_label (get_health sh))
           (Breaker.state_label (Breaker.state sh.sh_breaker))))
    t.r_shards;
  Buffer.add_string b "],\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ") name v))
    (counters t);
  Buffer.add_string b
    (Printf.sprintf
       "},\n\
       \  \"wire\": {\"connections\": %d, \"frames_in\": %d, \"frames_out\": \
        %d, \"decode_errors\": %d}\n\
        }\n"
       (Metrics.Counter.value t.c_connections)
       (Metrics.Counter.value t.c_frames_in)
       (Metrics.Counter.value t.c_frames_out)
       (Metrics.Counter.value t.c_decode_errors));
  Buffer.contents b

let handle_msg t msg =
  match msg with
  | Wire.Infer { key; deadline; dims; data } ->
      if t.r_draining then Wire.Infer_reply Wire.Closed
      else Wire.Infer_reply (route_infer t ~deadline ~key ~dims ~data)
  | Wire.Ping ->
      let healthy =
        List.exists (fun (_, h) -> h = Healthy) (shard_health t)
      in
      Wire.Pong
        { healthy; queue_depth = 0; capacity = 0; draining = t.r_draining }
  | Wire.Stats -> Wire.Stats_reply (stats_json t)
  | Wire.Drain ->
      t.r_draining <- true;
      Wire.Drain_reply
  | Wire.Publish _ | Wire.Activate _ | Wire.Model_info _ ->
      Wire.Nack "publish/activate go directly to shard endpoints"
  | Wire.Infer_reply _ | Wire.Pong _ | Wire.Publish_reply _
  | Wire.Activate_reply _ | Wire.Model_info_reply _ | Wire.Stats_reply _
  | Wire.Drain_reply | Wire.Nack _ ->
      Wire.Nack "router expects requests, not replies"

let unregister_conn t fd =
  Mutex.lock t.r_mutex;
  t.r_conns <- List.filter (fun (fd', _) -> fd' != fd) t.r_conns;
  Mutex.unlock t.r_mutex

let handle_conn t fd =
  let dec = Wire.decoder () in
  let rec loop () =
    match Wire.read_frame fd dec with
    | exception Unix.Unix_error (_, _, _) -> ()
    | Error `Eof -> ()
    | Error (`Error _) -> Metrics.Counter.incr t.c_decode_errors
    | Ok (id, msg) -> (
        Metrics.Counter.incr t.c_frames_in;
        match Wire.write_frame fd ~id (handle_msg t msg) with
        | () ->
            Metrics.Counter.incr t.c_frames_out;
            loop ()
        | exception Unix.Unix_error (_, _, _) -> ())
  in
  loop ();
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  unregister_conn t fd

let accept_loop t =
  let rec loop () =
    if t.r_accepting then
      match Unix.select [ t.r_listen ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept t.r_listen with
          | exception Unix.Unix_error (_, _, _) -> if t.r_accepting then loop ()
          | fd, _ ->
              Metrics.Counter.incr t.c_connections;
              Mutex.lock t.r_mutex;
              if t.r_accepting then begin
                let th = Thread.create (fun () -> handle_conn t fd) () in
                t.r_conns <- (fd, th) :: t.r_conns;
                Mutex.unlock t.r_mutex;
                loop ()
              end
              else begin
                Mutex.unlock t.r_mutex;
                try Unix.close fd with Unix.Unix_error (_, _, _) -> ()
              end)
  in
  loop ()

(* Health sweep: one fresh short-timeout ping per shard per interval.
   The ping deliberately bypasses the pool — a pooled connection to a
   dead shard would just burn the timeout twice.  The ping's own
   timeout is capped by the sweep interval, never the data path's
   connect timeout: one black-holed endpoint must not stall the whole
   sweep.  Ping failures feed the shard's circuit breaker (a Dead
   shard stops receiving traffic, so traffic alone could never
   accumulate K failures); ping successes restore health only — the
   open → half-open → closed sequence stays traffic-driven. *)
let heartbeat_loop t =
  let interval = t.r_config.heartbeat_interval in
  let timeout =
    Float.max 0.05 (Float.min t.r_config.connect_timeout interval)
  in
  while t.r_accepting do
    List.iter
      (fun (_, sh) ->
        if t.r_accepting then
          match Shard_client.connect ~timeout sh.sh_endpoint with
          | Error _ ->
              breaker_failure t sh;
              set_health t sh Dead;
              drop_pool sh
          | Ok c ->
              (match Shard_client.ping c with
              | Ok (Wire.Pong { healthy = true; draining = false; _ }) ->
                  (* Keep a Backpressured mark until traffic succeeds;
                     the ping only proves liveness, not headroom. *)
                  if get_health sh = Dead then set_health t sh Healthy
              | Ok _ | Error _ ->
                  breaker_failure t sh;
                  set_health t sh Dead;
                  drop_pool sh);
              Shard_client.close c)
      t.r_shards;
    (* Sleep in small slices (monotonic accounting) so stop() is
       prompt. *)
    let t0 = Mclock.now () in
    while t.r_accepting && Mclock.elapsed t0 < interval do
      Thread.delay 0.05
    done
  done

let start ?(config = default_config) ~shards ~path () =
  if shards = [] then Error "router needs at least one shard endpoint"
  else begin
    (try if Sys.file_exists path then Unix.unlink path
     with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd -> (
        match
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 64
        with
        | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
            Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
        | () ->
            let t =
              {
                r_path = path;
                r_config = config;
                r_ring = Ring.create ~vnodes:config.vnodes shards;
                r_shards =
                  List.map
                    (fun ep ->
                      ( ep,
                        {
                          sh_endpoint = ep;
                          sh_mutex = Mutex.create ();
                          sh_breaker =
                            Breaker.create ~failures:config.breaker_failures
                              ~cooldown:config.breaker_cooldown ();
                          sh_health = Healthy;
                          sh_pool = [];
                        } ))
                    shards;
                r_listen = fd;
                r_mutex = Mutex.create ();
                r_conns = [];
                r_accept = None;
                r_heartbeat = None;
                r_accepting = true;
                r_draining = false;
                r_stopped = false;
                r_reqseq = Atomic.make 0;
                h_attempt_latency = Metrics.Histogram.create "attempt_latency";
                c_routed = Metrics.Counter.create "routed";
                c_failovers = Metrics.Counter.create "failovers";
                c_spills = Metrics.Counter.create "spills";
                c_unavailable = Metrics.Counter.create "unavailable";
                c_unhealthy = Metrics.Counter.create "unhealthy_transitions";
                c_recoveries = Metrics.Counter.create "recoveries";
                c_retries = Metrics.Counter.create "retries";
                c_hedges = Metrics.Counter.create "hedges";
                c_hedge_wins = Metrics.Counter.create "hedge_wins";
                c_breaker_opens = Metrics.Counter.create "breaker_opens";
                c_breaker_probes = Metrics.Counter.create "breaker_probes";
                c_breaker_closes = Metrics.Counter.create "breaker_closes";
                c_deadline_rejected =
                  Metrics.Counter.create "deadline_rejected";
                c_connections = Metrics.Counter.create "connections";
                c_frames_in = Metrics.Counter.create "frames_in";
                c_frames_out = Metrics.Counter.create "frames_out";
                c_decode_errors = Metrics.Counter.create "decode_errors";
              }
            in
            t.r_accept <- Some (Thread.create (fun () -> accept_loop t) ());
            t.r_heartbeat <-
              Some (Thread.create (fun () -> heartbeat_loop t) ());
            Ok t)
  end

let path t = t.r_path

let stop t =
  Mutex.lock t.r_mutex;
  let already = t.r_stopped in
  t.r_stopped <- true;
  t.r_draining <- true;
  t.r_accepting <- false;
  Mutex.unlock t.r_mutex;
  if not already then begin
    (match t.r_accept with
    | Some th ->
        t.r_accept <- None;
        Thread.join th
    | None -> ());
    (match t.r_heartbeat with
    | Some th ->
        t.r_heartbeat <- None;
        Thread.join th
    | None -> ());
    (try Unix.close t.r_listen with Unix.Unix_error (_, _, _) -> ());
    (try Unix.unlink t.r_path
     with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
    Mutex.lock t.r_mutex;
    let conns = t.r_conns in
    Mutex.unlock t.r_mutex;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error (_, _, _) -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    List.iter (fun (_, sh) -> drop_pool sh) t.r_shards
  end

let wait t =
  match t.r_accept with Some th -> Thread.join th | None -> ()
