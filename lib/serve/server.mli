(** Dynamic-batching inference server with admission control.

    Requests are single images [| c; h; w |]; the server coalesces up to
    [max_batch] of them (holding the batch window at most [max_delay]
    seconds) into one batched forward pass and hands each request its own
    logits row — bit-identical to running that request alone.

    Admission control: the queue is bounded by [capacity]; overflow sheds
    with {!Rejected_overload}.  Requests carry optional relative
    deadlines; ones that expire before compute dispatch get
    {!Deadline_expired}.  No function raises across this API — malformed
    inputs, post-shutdown submits and model exceptions all surface as
    typed outcomes.

    With [workers = 1] (default) the compute worker uses the global
    {!Twq_util.Parallel} pool inside kernels; with more workers each
    batch runs under [Parallel.sequential] and the workers provide the
    parallelism between batches. *)

type config = {
  max_batch : int;
  max_delay : float;  (** seconds the batch window stays open *)
  capacity : int;  (** request-queue bound; overflow sheds *)
  workers : int;  (** compute worker domains *)
  default_deadline : float option;  (** relative seconds, per request *)
}

val default_config : config
(** [{ max_batch = 8; max_delay = 0.002; capacity = 64; workers = 1;
      default_deadline = None }] *)

type outcome =
  | Output of Twq_tensor.Tensor.t  (** logits row, shape [| classes |] *)
  | Rejected_overload  (** queue was full at submit *)
  | Deadline_expired  (** deadline passed before compute dispatch *)
  | Rejected_invalid of string  (** input shape mismatch *)
  | Rejected_closed  (** submitted after shutdown *)
  | Failed of string  (** exception escaped the model *)

val outcome_label : outcome -> string

type t
type ticket

val start :
  ?config:config -> model:(unit -> Model.t) -> input_dims:int array -> unit -> t
(** Spawn the worker domains.  [model] is resolved once per batch, so a
    registry-backed resolver hot-swaps versions between batches.
    @raise Invalid_argument on malformed [input_dims] or [workers < 1]. *)

val for_model : ?config:config -> Model.t -> input_dims:int array -> unit -> t
(** [start] with a constant model. *)

val submit : ?deadline:float -> t -> Twq_tensor.Tensor.t -> ticket
(** Non-blocking; sheds (typed) instead of waiting.  [deadline] is in
    relative seconds and overrides [config.default_deadline]. *)

val await : ticket -> outcome
(** Block until the request completes. *)

val peek : ticket -> outcome option
(** Non-blocking completion check. *)

val infer : ?deadline:float -> t -> Twq_tensor.Tensor.t -> outcome
(** [submit] then [await]. *)

val metrics : t -> Metrics.t
val queue_depth : t -> int
val config : t -> config

val shutdown : t -> unit
(** Graceful drain: close admission, let workers finish every queued
    request, join the worker domains.  Idempotent. *)
