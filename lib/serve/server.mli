(** Dynamic-batching inference server with admission control.

    Requests are single images [| c; h; w |]; the server coalesces up to
    [max_batch] of them (holding the batch window at most [max_delay]
    seconds) into one batched forward pass and hands each request its own
    logits row — bit-identical to running that request alone.

    Admission control: the queue is bounded by [capacity]; overflow sheds
    with {!Rejected_overload}.  Requests carry optional relative
    deadlines; ones that expire before compute dispatch get
    {!Deadline_expired}.  No function raises across this API — malformed
    inputs, post-shutdown submits and model exceptions all surface as
    typed outcomes.

    With [workers = 1] (default) the compute worker uses the global
    {!Twq_util.Parallel} pool inside kernels; with more workers each
    batch runs under [Parallel.sequential] and the workers provide the
    parallelism between batches. *)

type config = {
  max_batch : int;
  max_delay : float;  (** seconds the batch window stays open *)
  capacity : int;  (** request-queue bound; overflow sheds *)
  workers : int;  (** compute worker domains *)
  default_deadline : float option;  (** relative seconds, per request *)
}

val default_config : config
(** [{ max_batch = 8; max_delay = 0.002; capacity = 64; workers = 1;
      default_deadline = None }] *)

type outcome =
  | Output of Twq_tensor.Tensor.t  (** logits row, shape [| classes |] *)
  | Rejected_overload  (** queue was full at submit *)
  | Deadline_expired  (** deadline passed before compute dispatch *)
  | Rejected_invalid of string  (** input shape mismatch *)
  | Rejected_closed  (** submitted after shutdown *)
  | Failed of string  (** exception escaped the model *)

val outcome_label : outcome -> string

type t
type ticket

val start :
  ?config:config -> model:(unit -> Model.t) -> input_dims:int array -> unit -> t
(** Spawn the worker domains.  [model] is resolved once per batch, so a
    registry-backed resolver hot-swaps versions between batches.
    @raise Invalid_argument on malformed [input_dims] or [workers < 1]. *)

val for_model : ?config:config -> Model.t -> input_dims:int array -> unit -> t
(** [start] with a constant model. *)

val submit : ?deadline:float -> t -> Twq_tensor.Tensor.t -> ticket
(** Non-blocking; sheds (typed) instead of waiting.  [deadline] is in
    relative seconds and overrides [config.default_deadline]. *)

val await : ticket -> outcome
(** Block until the request completes. *)

val peek : ticket -> outcome option
(** Non-blocking completion check. *)

val infer : ?deadline:float -> t -> Twq_tensor.Tensor.t -> outcome
(** [submit] then [await]. *)

val metrics : t -> Metrics.t
val queue_depth : t -> int
val config : t -> config

val shutdown : t -> unit
(** Graceful drain: close admission, let workers finish every queued
    request, join the worker domains.  Idempotent. *)

val timings : ticket -> (float * float) option
(** [(queue_wait, service)] phase durations in seconds for a completed
    ticket that reached compute dispatch; [None] for pending tickets and
    ones rejected before dispatch.  These are what the daemon reports in
    {!Wire.Logits}. *)

(** {2 Wire daemon}

    The server exposed on a Unix-domain socket speaking the {!Wire}
    protocol: one accept thread, one handler thread per connection, so
    the dynamic batcher coalesces requests across connections.

    The daemon serves one model at a time out of its {!Registry}:
    [Publish] frames stage artifacts without disturbing serving;
    [Activate] flips the registry's active pointer and swaps the serving
    model between batches (restarting the server only when the input
    dims change).  On startup it serves the newest artifact of the first
    registered name, pinning that version active — the recovery path for
    a shard restarted after a crash. *)

type daemon

val listen :
  ?config:config -> registry:Registry.t -> path:string -> unit ->
  (daemon, string) result
(** Bind a Unix-domain socket at [path] (removing a stale socket file
    first) and start accepting.  [config] applies to the underlying
    batching server. *)

val daemon_path : daemon -> string

val daemon_draining : daemon -> bool

val daemon_stats_json : daemon -> string
(** Serving name/version, wire counters (connections, frames in/out,
    decode errors) and the full server metrics snapshot, as JSON. *)

val stop_daemon : daemon -> unit
(** Graceful drain: stop accepting, let every in-flight request complete
    and its reply flush, then shut the server down.  Idempotent. *)

val kill_daemon : daemon -> unit
(** Abrupt teardown for chaos tests: connections are severed immediately
    (clients see EOF mid-request, as with a SIGKILLed process), then
    resources are reclaimed.  Idempotent. *)

val wait_daemon : daemon -> unit
(** Block until the daemon stops accepting (i.e. until {!stop_daemon} or
    {!kill_daemon} is called from another thread or a signal handler). *)
