(* A servable artifact: either a linear Deploy net or a quantized
   Int_graph.  Both take a float NCHW batch (quantized internally at the
   recorded input scale) and return float logits [n; classes]; every
   per-sample computation is independent of the batch dimension, which is
   what lets the dynamic batcher promise bit-identical results. *)

module Tensor = Twq_tensor.Tensor
module Deploy = Twq_nn.Deploy
module Int_graph = Twq_nn.Int_graph

type t = Net of Deploy.t | Graph of Int_graph.t

let kind = function Net _ -> "net" | Graph _ -> "graph"

let to_string = function
  | Net d -> Deploy.to_string d
  | Graph g -> Int_graph.to_string g

(* Dispatch on the payload's own magic line; both parsers funnel their
   typed reader errors through Failure. *)
let of_string s =
  let magic =
    match String.index_opt s ' ' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  match magic with
  | "twq-int8-net" -> (
      match Deploy.of_string s with
      | d -> Ok (Net d)
      | exception Failure msg -> Error msg)
  | "twq-int8-graph" -> (
      match Int_graph.of_string s with
      | g -> Ok (Graph g)
      | exception Failure msg -> Error msg)
  | m -> Error (Printf.sprintf "unknown model magic %S" m)

let run_batch t x =
  match t with Net d -> Deploy.forward d x | Graph g -> Int_graph.run g x

(* Compile the execution plans for the batch shapes the server will
   actually dispatch, so no request ever pays for planning.  Plan
   compilation is pure scheduling (the Winograd weights were already
   packed when the artifact was loaded), so warming even a dozen batch
   sizes is milliseconds. *)
let warm t ~input_dims ~batch_sizes =
  let plan_cache =
    match t with
    | Net d -> Some (Deploy.plans d)
    | Graph g -> Int_graph.plans g
  in
  match plan_cache with
  | None -> ()
  | Some c ->
      List.iter
        (fun n ->
          if n > 0 then
            ignore
              (Twq_nn.Plan.plan c
                 ~input_shape:
                   [| n; input_dims.(0); input_dims.(1); input_dims.(2) |]))
        batch_sizes
