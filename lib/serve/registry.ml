(* Model registry: a directory of versioned, CRC-checked artifacts plus
   an in-memory table with atomic hot-swap.

   On-disk format (one file per name+version, "<name>@v<version>.twqm"):

     twq-model v1 <name> <version> <kind> <c> <h> <w> <len> <crc32hex>\n
     <payload bytes>

   where <payload> is Model.to_string output, <crc32hex> its CRC-32 and
   <c> <h> <w> the per-request input dims the model expects.  Files are
   written to "<file>.tmp" then renamed, exactly like Checkpoint, so a
   reader never sees a torn artifact; a writer killed mid-write leaves an
   orphan .tmp that [open_dir] removes.

   The table maps name -> entries (newest version first).  [publish]
   swaps the new entry in under the registry mutex after the rename
   lands, so concurrent [lookup]s switch atomically from the old model
   value to the new one — in-flight batches keep the version they
   resolved. *)

module Crc32 = Twq_util.Crc32

type error =
  | Io_error of string
  | Bad_name of string
  | Bad_artifact of { file : string; reason : string }
  | Corrupt_artifact of { file : string; expected : int; got : int }
  | No_such_model of { name : string; version : int option }

let error_to_string = function
  | Io_error msg -> "io error: " ^ msg
  | Bad_name n -> Printf.sprintf "invalid model name %S" n
  | Bad_artifact { file; reason } ->
      Printf.sprintf "bad artifact %s: %s" file reason
  | Corrupt_artifact { file; expected; got } ->
      Printf.sprintf "corrupt artifact %s: header crc %08x, payload crc %08x"
        file expected got
  | No_such_model { name; version } -> (
      match version with
      | None -> Printf.sprintf "no model named %S" name
      | Some v -> Printf.sprintf "no model %S version %d" name v)

type entry = {
  name : string;
  version : int;
  input_dims : int array; (* [| c; h; w |] per request *)
  crc : int;
  model : Model.t;
}

type t = {
  dir : string;
  mutex : Mutex.t;
  mutable table : (string * entry list) list; (* versions newest-first *)
  mutable active : (string * int) list; (* name -> pinned serving version *)
  mutable orphans_removed : string list;
  mutable skipped : (string * error) list;
}

let magic = "twq-model"

let valid_name n =
  String.length n > 0
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       n

let artifact_file name version = Printf.sprintf "%s@v%d.twqm" name version

let header entry payload =
  Printf.sprintf "%s v1 %s %d %s %d %d %d %d %08x\n" magic entry.name
    entry.version
    (Model.kind entry.model)
    entry.input_dims.(0) entry.input_dims.(1) entry.input_dims.(2)
    (String.length payload) (Crc32.digest payload)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception End_of_file -> Error (Io_error (path ^ ": unreadable")))

let parse_artifact ~file raw =
  let bad reason = Error (Bad_artifact { file; reason }) in
  match String.index_opt raw '\n' with
  | None -> bad "no header line"
  | Some nl -> (
      let hdr = String.sub raw 0 nl in
      match String.split_on_char ' ' hdr with
      | [ m; v; name; version; kind; c; h; w; len; crc ] -> (
          if m <> magic then bad "bad magic"
          else if v <> "v1" then bad ("unsupported format version " ^ v)
          else if not (valid_name name) then bad ("invalid name " ^ name)
          else
            match
              ( int_of_string_opt version, int_of_string_opt c,
                int_of_string_opt h, int_of_string_opt w,
                int_of_string_opt len, int_of_string_opt ("0x" ^ crc) )
            with
            | Some version, Some c, Some h, Some w, Some len, Some crc
              when version >= 0 && c > 0 && h > 0 && w > 0 && len >= 0 ->
                let got_len = String.length raw - nl - 1 in
                if got_len <> len then
                  bad
                    (Printf.sprintf "payload is %d bytes, header says %d"
                       got_len len)
                else if kind <> "net" && kind <> "graph" then
                  bad ("unknown kind " ^ kind)
                else begin
                  let got = Crc32.digest_sub raw ~pos:(nl + 1) ~len in
                  if got <> crc then
                    Error (Corrupt_artifact { file; expected = crc; got })
                  else
                    match Model.of_string (String.sub raw (nl + 1) len) with
                    | Error reason -> bad reason
                    | Ok model ->
                        if Model.kind model <> kind then
                          bad "kind tag does not match payload"
                        else
                          Ok
                            {
                              name;
                              version;
                              input_dims = [| c; h; w |];
                              crc;
                              model;
                            }
                end
            | _ -> bad ("garbled header: " ^ hdr))
      | _ -> bad ("garbled header: " ^ hdr))

let insert table e =
  let versions = try List.assoc e.name table with Not_found -> [] in
  let versions =
    e :: List.filter (fun e' -> e'.version <> e.version) versions
  in
  let versions =
    List.sort (fun a b -> compare b.version a.version) versions
  in
  (e.name, versions) :: List.remove_assoc e.name table

let scan dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error (Io_error msg)
  | files ->
      let orphans = ref [] and skipped = ref [] and table = ref [] in
      Array.sort compare files;
      Array.iter
        (fun f ->
          let path = Filename.concat dir f in
          if Filename.check_suffix f ".tmp" then begin
            (* Leftover from a writer killed between open and rename:
               never referenced by a header, safe to discard. *)
            (try Sys.remove path with Sys_error _ -> ());
            orphans := f :: !orphans
          end
          else if Filename.check_suffix f ".twqm" then
            match read_file path with
            | Error e -> skipped := (f, e) :: !skipped
            | Ok raw -> (
                match parse_artifact ~file:f raw with
                | Error e -> skipped := (f, e) :: !skipped
                | Ok entry -> table := insert !table entry))
        files;
      Ok (!table, List.rev !orphans, List.rev !skipped)

let open_dir dir =
  (if not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755 with Unix.Unix_error (e, _, _) ->
       raise (Sys_error (Unix.error_message e)));
  match scan dir with
  | exception Sys_error msg -> Error (Io_error msg)
  | Error e -> Error e
  | Ok (table, orphans_removed, skipped) ->
      Ok
        {
          dir;
          mutex = Mutex.create ();
          table;
          active = [];
          orphans_removed;
          skipped;
        }

let orphans_removed t = t.orphans_removed
let skipped t = t.skipped

let write_atomic path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     flush oc
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let publish t ~name ~version ~input_dims model =
  if not (valid_name name) then Error (Bad_name name)
  else if version < 0 then
    Error (Bad_artifact { file = name; reason = "negative version" })
  else if Array.length input_dims <> 3 || Array.exists (fun d -> d <= 0) input_dims
  then Error (Bad_artifact { file = name; reason = "input_dims must be [c;h;w] > 0" })
  else begin
    let payload = Model.to_string model in
    let entry =
      { name; version; input_dims = Array.copy input_dims;
        crc = Crc32.digest payload; model }
    in
    let path = Filename.concat t.dir (artifact_file name version) in
    match write_atomic path (header entry payload ^ payload) with
    | exception Sys_error msg -> Error (Io_error msg)
    | () ->
        (* The rename landed: swap the live table entry atomically. *)
        Mutex.lock t.mutex;
        t.table <- insert t.table entry;
        Mutex.unlock t.mutex;
        Ok entry
  end

let lookup ?version t name =
  Mutex.lock t.mutex;
  let versions = try List.assoc name t.table with Not_found -> [] in
  Mutex.unlock t.mutex;
  match version with
  | None -> (
      match versions with
      | e :: _ -> Ok e
      | [] -> Error (No_such_model { name; version }))
  | Some v -> (
      match List.find_opt (fun e -> e.version = v) versions with
      | Some e -> Ok e
      | None -> Error (No_such_model { name; version }))

(* Active-version pointer: the two-phase fleet publish stages new
   artifacts with [publish] (phase one) without disturbing what is being
   served, then flips this pointer with [activate] (phase two).  Lookups
   that should follow the pointer go through [resolve]. *)

let activate t ~name ~version =
  Mutex.lock t.mutex;
  let versions = try List.assoc name t.table with Not_found -> [] in
  let r =
    match List.find_opt (fun e -> e.version = version) versions with
    | None ->
        Error (No_such_model { name; version = Some version })
    | Some _ ->
        t.active <- (name, version) :: List.remove_assoc name t.active;
        Ok ()
  in
  Mutex.unlock t.mutex;
  r

let active_version t name =
  Mutex.lock t.mutex;
  let v = List.assoc_opt name t.active in
  Mutex.unlock t.mutex;
  v

let resolve t name =
  match active_version t name with
  | Some v -> lookup ~version:v t name
  | None -> lookup t name

let names t =
  Mutex.lock t.mutex;
  let ns =
    List.sort compare
      (List.map
         (fun (n, es) -> (n, List.map (fun e -> e.version) es))
         t.table)
  in
  Mutex.unlock t.mutex;
  ns

let refresh t =
  match scan t.dir with
  | exception Sys_error msg -> Error (Io_error msg)
  | Error e -> Error e
  | Ok (table, orphans, skipped) ->
      Mutex.lock t.mutex;
      t.table <- table;
      (* An active pointer whose artifact vanished from disk would make
         every resolve fail; drop it and fall back to newest. *)
      t.active <-
        List.filter
          (fun (name, v) ->
            match List.assoc_opt name table with
            | None -> false
            | Some es -> List.exists (fun e -> e.version = v) es)
          t.active;
      t.orphans_removed <- t.orphans_removed @ orphans;
      t.skipped <- skipped;
      Mutex.unlock t.mutex;
      Ok ()

(* Fleet-wide publish: stage the artifact on every shard, then flip every
   shard's active version, rolling back already-flipped shards if any
   activation fails.  The two phases make the flip atomic at fleet
   granularity: either every healthy shard ends up serving [version], or
   every shard is left serving what it served before.

   Failures during phase one abort before any flip, so no rollback is
   needed; failures during phase two re-activate the old version on the
   shards that already flipped (shards that had no active version before
   are left on the new one — there is nothing to return them to, and the
   report says so). *)

type shard_report = {
  endpoint : string;
  previous : int option;  (* active version before the publish *)
  prepared : bool;
  activated : bool;
  rolled_back : bool;
  detail : string;
}

type fleet_outcome = {
  committed : bool;
  fleet_name : string;
  fleet_version : int;
  reports : shard_report list;
}

(* Transport-class failures (connect refused, IO cut mid-frame, framing
   lost) are worth retrying on a jittered budget — the two-phase flip
   is idempotent per shard, staging the same artifact twice is a no-op.
   Protocol-level refusals (Remote nack, protocol confusion) are not:
   the peer answered; asking again will not change its mind. *)
let transport_error = function
  | Shard_client.Connect _ | Shard_client.Io _ | Shard_client.Decode _ -> true
  | Shard_client.Remote _ | Shard_client.Unexpected_reply _ -> false

let with_retry ~policy ~seed ~err f =
  let budget = Retry.start ~seed policy in
  let rec go () =
    match f () with
    | Ok _ as ok -> ok
    | Error e as failure -> (
        if not (transport_error (err e)) then failure
        else
          match Retry.next budget with
          | Some sleep ->
              Unix.sleepf sleep;
              go ()
          | None -> failure)
  in
  go ()

let publish_fleet ?(timeout = 30.0) ?(retry = Retry.default) ?(seed = 0)
    ~endpoints ~name ~version ~input_dims model =
  if not (valid_name name) then Error (Bad_name name)
  else if version < 0 then
    Error (Bad_artifact { file = name; reason = "negative version" })
  else if
    Array.length input_dims <> 3 || Array.exists (fun d -> d <= 0) input_dims
  then
    Error
      (Bad_artifact { file = name; reason = "input_dims must be [c;h;w] > 0" })
  else if endpoints = [] then
    Error (Bad_artifact { file = name; reason = "empty endpoint list" })
  else begin
    let payload = Model.to_string model in
    let report endpoint previous prepared activated rolled_back detail =
      { endpoint; previous; prepared; activated; rolled_back; detail }
    in
    (* Phase one: stage on every shard.  Each exchange gets a fresh
       connection so one wedged shard cannot poison another's stream;
       transport failures are retried on the attempt budget (staging is
       idempotent), with a distinct jitter stream per endpoint. *)
    let staged =
      List.mapi
        (fun i ep ->
          let stage () =
            match Shard_client.connect ~timeout ep with
            | Error e -> Error (None, e)
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Shard_client.close c)
                  (fun () ->
                    let previous =
                      match Shard_client.model_info c ~name with
                      | Ok (active, _) -> active
                      | Error _ -> None
                    in
                    match
                      Shard_client.publish c ~name ~version ~input_dims
                        ~payload
                    with
                    | Ok () -> Ok previous
                    | Error e -> Error (previous, e))
          in
          match with_retry ~policy:retry ~seed:(seed + i) ~err:snd stage with
          | Ok previous -> report ep previous true false false "staged"
          | Error (previous, e) ->
              report ep previous false false false
                (Shard_client.error_to_string e))
        endpoints
    in
    if List.exists (fun r -> not r.prepared) staged then
      (* Abort before any flip: every shard keeps serving its previous
         active version, so the fleet is still consistent. *)
      Ok
        {
          committed = false;
          fleet_name = name;
          fleet_version = version;
          reports = staged;
        }
    else begin
      (* Phase two: flip every shard.  Activation is idempotent too, so
         transport failures get the same retry budget; stop at the
         first definitive failure and roll the already-flipped shards
         back to their previous active version. *)
      let activate_ep i ep =
        with_retry ~policy:retry ~seed:(seed + i + List.length endpoints)
          ~err:Fun.id (fun () ->
            match Shard_client.connect ~timeout ep with
            | Error e -> Error e
            | Ok c ->
                Fun.protect
                  ~finally:(fun () -> Shard_client.close c)
                  (fun () -> Shard_client.activate c ~name ~version))
      in
      let rec flip i acc = function
        | [] -> (true, List.rev acc)
        | r :: rest -> (
            match activate_ep i r.endpoint with
            | Ok () ->
                flip (i + 1)
                  ({ r with activated = true; detail = "active" } :: acc)
                  rest
            | Error e ->
                ( false,
                  List.rev_append acc
                    ({ r with detail = Shard_client.error_to_string e }
                    :: rest) ))
      in
      let committed, flipped = flip 0 [] staged in
      let reports =
        if committed then flipped
        else
          List.map
            (fun r ->
              if not r.activated then r
              else
                match r.previous with
                | None ->
                    {
                      r with
                      detail = "activated; no previous version to roll back to";
                    }
                | Some prev -> (
                    let roll () =
                      match Shard_client.connect ~timeout r.endpoint with
                      | Error e -> Error e
                      | Ok c ->
                          Fun.protect
                            ~finally:(fun () -> Shard_client.close c)
                            (fun () ->
                              Shard_client.activate c ~name ~version:prev)
                    in
                    match
                      with_retry ~policy:retry ~seed:(seed + 0x5bd1) ~err:Fun.id
                        roll
                    with
                    | Ok () ->
                        {
                          r with
                          rolled_back = true;
                          detail = Printf.sprintf "rolled back to v%d" prev;
                        }
                    | Error e ->
                        {
                          r with
                          detail =
                            Printf.sprintf "rollback to v%d failed: %s" prev
                              (Shard_client.error_to_string e);
                        }))
            flipped
      in
      Ok { committed; fleet_name = name; fleet_version = version; reports }
    end
  end
