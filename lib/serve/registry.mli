(** Model registry: a directory of versioned, CRC-checked model artifacts
    with an in-memory table and atomic hot-swap.

    Artifacts live one per file ("<name>@v<version>.twqm"), framed by a
    header carrying name, version, kind, the per-request input dims and a
    CRC-32 ({!Twq_util.Crc32}) of the serialized model.  Writes are
    atomic (tmp + rename); {!open_dir} removes any orphaned [.tmp] files
    a killed writer left behind and skips — with a typed reason — any
    artifact that fails its header, CRC or parse checks.

    {!publish} installs the new entry in the live table only after the
    rename lands, so a concurrent {!lookup} atomically flips from the old
    model to the new one while in-flight batches keep whichever version
    they already resolved.  All results are typed; no function raises on
    malformed input. *)

type error =
  | Io_error of string
  | Bad_name of string
  | Bad_artifact of { file : string; reason : string }
  | Corrupt_artifact of { file : string; expected : int; got : int }
  | No_such_model of { name : string; version : int option }

val error_to_string : error -> string

type entry = {
  name : string;
  version : int;
  input_dims : int array;  (** per-request [| c; h; w |] *)
  crc : int;
  model : Model.t;
}

type t

val open_dir : string -> (t, error) result
(** Open (creating if missing) a registry directory: clean orphan [.tmp]
    files, load every valid artifact, record skipped ones. *)

val orphans_removed : t -> string list
(** Stale [.tmp] files deleted by {!open_dir} / {!refresh}. *)

val skipped : t -> (string * error) list
(** Artifact files present on disk but not loaded, with the reason. *)

val publish :
  t -> name:string -> version:int -> input_dims:int array -> Model.t ->
  (entry, error) result
(** Serialize, write atomically into the registry directory, then
    hot-swap the in-memory table. Re-publishing an existing name+version
    replaces it. *)

val lookup : ?version:int -> t -> string -> (entry, error) result
(** Current (highest-version) entry for a name, or a pinned version. *)

val activate : t -> name:string -> version:int -> (unit, error) result
(** Pin the serving version for [name] (phase two of a two-phase
    publish).  Fails with [No_such_model] if that version is not in the
    table — activate only what a prior {!publish} staged. *)

val active_version : t -> string -> int option
(** The pinned serving version, if any. *)

val resolve : t -> string -> (entry, error) result
(** The entry a server should serve: the pinned active version when one
    is set, otherwise the newest — so freshly staged (but not yet
    activated) artifacts never serve early. *)

val names : t -> (string * int list) list
(** All model names with their available versions, newest first. *)

val refresh : t -> (unit, error) result
(** Rescan the directory (picking up artifacts published by other
    processes) and atomically replace the table.  Active pointers whose
    artifact vanished are dropped (falling back to newest). *)

(** {2 Fleet-wide publish}

    Two-phase publish over the wire to a list of shard endpoints: stage
    the artifact on every shard ({!Shard_client.publish}), then flip
    every shard's active version ({!Shard_client.activate}).  If any
    staging fails, nothing is flipped; if any flip fails, shards that
    already flipped are rolled back to their previous active version.
    Either way every reachable shard ends the call serving one
    consistent version. *)

type shard_report = {
  endpoint : string;
  previous : int option;  (** active version before the publish *)
  prepared : bool;  (** phase one (stage) succeeded *)
  activated : bool;  (** phase two (flip) succeeded *)
  rolled_back : bool;
  detail : string;
}

type fleet_outcome = {
  committed : bool;  (** every shard is serving [fleet_version] *)
  fleet_name : string;
  fleet_version : int;
  reports : shard_report list;  (** one per endpoint, in input order *)
}

val publish_fleet :
  ?timeout:float ->
  ?retry:Retry.policy ->
  ?seed:int ->
  endpoints:string list ->
  name:string ->
  version:int ->
  input_dims:int array ->
  Model.t ->
  (fleet_outcome, error) result
(** [Error _] only for locally-invalid input (bad name/version/dims,
    empty endpoint list); per-shard failures are reported in the
    {!fleet_outcome}.  Transport-class failures (refused connect, IO
    cut, framing lost) during staging, activation and rollback are
    retried per endpoint on [retry] (default {!Retry.default}) with
    jitter seeded by [seed] — both phases are idempotent per shard, so
    a retried exchange can only converge, never double-apply.
    Protocol-level refusals are definitive and never retried. *)
