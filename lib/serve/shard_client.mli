(** Synchronous client for one fleet endpoint (shard daemon or router)
    speaking the {!Wire} protocol over a Unix-domain socket.

    One request is outstanding per connection at a time: each call
    writes a frame and blocks for the matching reply.  Concurrency comes
    from opening one client per thread — which is also what lets the
    shard's dynamic batcher coalesce requests across connections.

    Nothing raises across this API: connection failures, IO errors
    (including receive timeouts), protocol violations and remote [Nack]s
    all surface as a typed {!error}.  After an [Io] or [Decode] error
    the connection is dead — {!close} it and reconnect. *)

type error =
  | Connect of string  (** socket/connect failure *)
  | Io of string  (** send/receive failure, timeout, EOF *)
  | Decode of Wire.error  (** peer broke framing *)
  | Unexpected_reply of string  (** well-formed but wrong message type/id *)
  | Remote of string  (** peer answered [Nack] or a not-ok reply *)

val error_to_string : error -> string

type t

val connect : ?timeout:float -> string -> (t, error) result
(** [connect path] opens a Unix-domain stream socket to [path].
    [timeout] (default 30 s) bounds every subsequent send and receive so
    a hung peer cannot block the caller forever. *)

val close : t -> unit
(** Idempotent. *)

val endpoint : t -> string

type infer_reply = { outcome : Wire.outcome; wire_latency : float }
(** [wire_latency]: request write to reply decode, seconds. *)

val infer :
  ?deadline:float -> ?key:string -> t -> Twq_tensor.Tensor.t ->
  (infer_reply, error) result
(** [key] defaults to [""] (routers hash it; shards ignore it). *)

val infer_raw :
  ?deadline:float -> key:string -> dims:int array -> data:float array ->
  t -> (infer_reply, error) result
(** Forwarding entry point: sends an already-decoded tensor body without
    rebuilding a tensor (used by the router's proxy path). *)

val ping : t -> (Wire.msg, error) result
(** Returns the [Pong] message. *)

val publish :
  t -> name:string -> version:int -> input_dims:int array -> payload:string ->
  (unit, error) result
(** Stage an artifact on the peer (phase one of a fleet publish); the
    peer keeps serving its active version until {!activate}. *)

val activate : t -> name:string -> version:int -> (unit, error) result
(** Flip the peer's active version (phase two). *)

val model_info : t -> name:string -> (int option * int list, error) result
(** [(active_version, available_versions)]. *)

val stats : t -> (string, error) result
(** Peer's stats snapshot as JSON. *)

val drain : t -> (unit, error) result
(** Ask the peer to drain and stop accepting new work. *)
