(* Synchronous request/reply client over the Wire framing.

   The discipline is strictly one outstanding request per connection:
   write a frame with a fresh id, block until the peer's next frame,
   check the echoed id.  That keeps the client trivially correct (no
   demultiplexer) and pushes pipelining where it belongs — many
   connections, which is also the shape that feeds the shard's dynamic
   batcher.

   Sockets carry send/receive timeouts so a wedged peer turns into a
   typed [Io] error instead of a hung caller; SIGPIPE is disabled
   process-wide on first connect so a dead peer turns into EPIPE. *)

module Tensor = Twq_tensor.Tensor

type error =
  | Connect of string
  | Io of string
  | Decode of Wire.error
  | Unexpected_reply of string
  | Remote of string

let error_to_string = function
  | Connect m -> "connect: " ^ m
  | Io m -> "io: " ^ m
  | Decode e -> "decode: " ^ Wire.error_to_string e
  | Unexpected_reply m -> "unexpected reply: " ^ m
  | Remote m -> "remote: " ^ m

type t = {
  endpoint : string;
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable next_id : int64;
  mutable closed : bool;
}

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let connect ?(timeout = 30.0) path =
  Lazy.force ignore_sigpipe;
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Connect (Unix.error_message e))
  | fd -> (
      match
        if timeout > 0.0 then begin
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
        end;
        Unix.connect fd (Unix.ADDR_UNIX path)
      with
      | () ->
          Ok
            {
              endpoint = path;
              fd;
              dec = Wire.decoder ();
              next_id = 1L;
              closed = false;
            }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Connect (Printf.sprintf "%s: %s" path (Unix.error_message e))))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let endpoint t = t.endpoint

(* One request/reply exchange.  Any IO failure leaves the stream in an
   unknown state, so the caller must treat the connection as dead. *)
let roundtrip t msg =
  if t.closed then Error (Io "connection closed")
  else begin
    let id = t.next_id in
    t.next_id <- Int64.add id 1L;
    match
      Wire.write_frame t.fd ~id msg;
      Wire.read_frame t.fd t.dec
    with
    | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
    | Error `Eof -> Error (Io "peer closed the connection")
    | Error (`Error e) -> Error (Decode e)
    | Ok (rid, reply) ->
        if rid <> id then
          Error
            (Unexpected_reply
               (Printf.sprintf "reply id %Ld for request %Ld" rid id))
        else Ok reply
  end

type infer_reply = { outcome : Wire.outcome; wire_latency : float }

let infer_raw ?deadline ~key ~dims ~data t =
  let t0 = Unix.gettimeofday () in
  match roundtrip t (Wire.Infer { key; deadline; dims; data }) with
  | Error _ as e -> e
  | Ok (Wire.Infer_reply outcome) ->
      Ok { outcome; wire_latency = Unix.gettimeofday () -. t0 }
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "infer expected Infer_reply")

let infer ?deadline ?(key = "") t x =
  let dims = Array.init (Tensor.rank x) (Tensor.dim x) in
  infer_raw ?deadline ~key ~dims ~data:x.Tensor.data t

let ping t =
  match roundtrip t Wire.Ping with
  | Error _ as e -> e
  | Ok (Wire.Pong _ as pong) -> Ok pong
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "ping expected Pong")

let ack_reply what = function
  | Error _ as e -> e
  | Ok (Wire.Publish_reply { ok; reason } | Wire.Activate_reply { ok; reason })
    ->
      if ok then Ok () else Error (Remote reason)
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply (what ^ " expected an ack reply"))

let publish t ~name ~version ~input_dims ~payload =
  ack_reply "publish"
    (roundtrip t (Wire.Publish { name; version; input_dims; payload }))

let activate t ~name ~version =
  ack_reply "activate" (roundtrip t (Wire.Activate { name; version }))

let model_info t ~name =
  match roundtrip t (Wire.Model_info { name }) with
  | Error _ as e -> e
  | Ok (Wire.Model_info_reply { active; versions }) -> Ok (active, versions)
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "model_info expected Model_info_reply")

let stats t =
  match roundtrip t Wire.Stats with
  | Error _ as e -> e
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "stats expected Stats_reply")

let drain t =
  match roundtrip t Wire.Drain with
  | Error _ as e -> e
  | Ok Wire.Drain_reply -> Ok ()
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "drain expected Drain_reply")
