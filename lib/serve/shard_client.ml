(* Synchronous request/reply client over the Wire framing.

   The discipline is strictly one outstanding request per connection:
   write a frame with a fresh id, block until the peer's next frame,
   check the echoed id.  That keeps the client trivially correct (no
   demultiplexer) and pushes pipelining where it belongs — many
   connections, which is also the shape that feeds the shard's dynamic
   batcher.

   Sockets carry send/receive timeouts so a wedged peer turns into a
   typed [Io] error instead of a hung caller; SIGPIPE is disabled
   process-wide on first connect so a dead peer turns into EPIPE.

   Every IO step consults the [Fault] hook (one Atomic.get when
   disarmed): connects can be refused or severed, sends and receives
   can stall, and a [drop] at the send site writes half the encoded
   frame before closing — the worst case for a framed protocol, which
   the peer's CRC/length checks must absorb as a decode error rather
   than a wrong answer. *)

module Tensor = Twq_tensor.Tensor
module Mclock = Twq_util.Mclock

type error =
  | Connect of string
  | Io of string
  | Decode of Wire.error
  | Unexpected_reply of string
  | Remote of string

let error_to_string = function
  | Connect m -> "connect: " ^ m
  | Io m -> "io: " ^ m
  | Decode e -> "decode: " ^ Wire.error_to_string e
  | Unexpected_reply m -> "unexpected reply: " ^ m
  | Remote m -> "remote: " ^ m

type t = {
  endpoint : string;
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable next_id : int64;
  mutable closed : bool;
}

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let connect ?(timeout = 30.0) path =
  Lazy.force ignore_sigpipe;
  let fault = Fault.probe Fault.Connect ~peer:path in
  (match fault with
  | Some (Fault.Stall d | Fault.Delay d) -> Unix.sleepf d
  | _ -> ());
  match fault with
  | Some Fault.Refuse -> Error (Connect (path ^ ": injected refusal"))
  | _ -> (
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Connect (Unix.error_message e))
      | fd -> (
          match
            if timeout > 0.0 then begin
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
              Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
            end;
            Unix.connect fd (Unix.ADDR_UNIX path)
          with
          | () ->
              (* Injected drop at the connect site: the handshake worked
                 but the link is already dead — like a peer that accepts
                 and immediately resets.  The first roundtrip gets EPIPE. *)
              (match fault with
              | Some Fault.Drop -> (
                  try Unix.shutdown fd Unix.SHUTDOWN_ALL
                  with Unix.Unix_error _ -> ())
              | _ -> ());
              Ok
                {
                  endpoint = path;
                  fd;
                  dec = Wire.decoder ();
                  next_id = 1L;
                  closed = false;
                }
          | exception Unix.Unix_error (e, _, _) ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error
                (Connect (Printf.sprintf "%s: %s" path (Unix.error_message e)))))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let endpoint t = t.endpoint

(* Write `len` bytes of an encoded frame, used by the injected
   mid-frame drop: half a frame on the wire, then the socket dies. *)
let write_partial fd frame len =
  let rec go off =
    if off < len then
      let n = Unix.write_substring fd frame off (len - off) in
      go (off + n)
  in
  (try go 0 with Unix.Unix_error _ -> ());
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* One request/reply exchange.  Any IO failure leaves the stream in an
   unknown state, so the caller must treat the connection as dead. *)
let roundtrip t msg =
  if t.closed then Error (Io "connection closed")
  else begin
    let id = t.next_id in
    t.next_id <- Int64.add id 1L;
    match Fault.probe Fault.Send ~peer:t.endpoint with
    | Some Fault.Refuse ->
        (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        Error (Io "injected send refusal")
    | Some Fault.Drop ->
        let frame = Wire.encode ~id msg in
        write_partial t.fd frame (String.length frame / 2);
        Error (Io "injected mid-frame drop")
    | fault -> (
        (match fault with
        | Some (Fault.Stall d | Fault.Delay d) -> Unix.sleepf d
        | _ -> ());
        match
          Wire.write_frame t.fd ~id msg;
          (match Fault.probe Fault.Recv ~peer:t.endpoint with
          | Some (Fault.Stall d | Fault.Delay d) -> Unix.sleepf d
          | Some (Fault.Drop | Fault.Refuse) ->
              (* The request is already on the wire; losing the read half
                 here is exactly a lost ack. *)
              (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL
               with Unix.Unix_error _ -> ());
              raise (Unix.Unix_error (Unix.ECONNRESET, "recv", "injected"))
          | None -> ());
          Wire.read_frame t.fd t.dec
        with
        | exception Unix.Unix_error (e, _, _) ->
            Error (Io (Unix.error_message e))
        | Error `Eof -> Error (Io "peer closed the connection")
        | Error (`Error e) -> Error (Decode e)
        | Ok (rid, reply) ->
            if rid <> id then
              Error
                (Unexpected_reply
                   (Printf.sprintf "reply id %Ld for request %Ld" rid id))
            else Ok reply)
  end

type infer_reply = { outcome : Wire.outcome; wire_latency : float }

let infer_raw ?deadline ~key ~dims ~data t =
  let t0 = Mclock.now () in
  match roundtrip t (Wire.Infer { key; deadline; dims; data }) with
  | Error _ as e -> e
  | Ok (Wire.Infer_reply outcome) ->
      Ok { outcome; wire_latency = Mclock.elapsed t0 }
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "infer expected Infer_reply")

let infer ?deadline ?(key = "") t x =
  let dims = Array.init (Tensor.rank x) (Tensor.dim x) in
  infer_raw ?deadline ~key ~dims ~data:x.Tensor.data t

let ping t =
  match roundtrip t Wire.Ping with
  | Error _ as e -> e
  | Ok (Wire.Pong _ as pong) -> Ok pong
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "ping expected Pong")

let ack_reply what = function
  | Error _ as e -> e
  | Ok (Wire.Publish_reply { ok; reason } | Wire.Activate_reply { ok; reason })
    ->
      if ok then Ok () else Error (Remote reason)
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply (what ^ " expected an ack reply"))

let publish t ~name ~version ~input_dims ~payload =
  ack_reply "publish"
    (roundtrip t (Wire.Publish { name; version; input_dims; payload }))

let activate t ~name ~version =
  ack_reply "activate" (roundtrip t (Wire.Activate { name; version }))

let model_info t ~name =
  match roundtrip t (Wire.Model_info { name }) with
  | Error _ as e -> e
  | Ok (Wire.Model_info_reply { active; versions }) -> Ok (active, versions)
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "model_info expected Model_info_reply")

let stats t =
  match roundtrip t Wire.Stats with
  | Error _ as e -> e
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "stats expected Stats_reply")

let drain t =
  match roundtrip t Wire.Drain with
  | Error _ as e -> e
  | Ok Wire.Drain_reply -> Ok ()
  | Ok (Wire.Nack m) -> Error (Remote m)
  | Ok _ -> Error (Unexpected_reply "drain expected Drain_reply")
