(** Closed-loop load generator for a {!Server.t}.

    Spawns [concurrency] client domains that each keep one request
    outstanding (claim id, optionally wait for the paced start slot,
    submit, await, record).  With [rate] > 0, request [i] does not start
    before [t0 + i/rate], so a rate above the server's capacity drives it
    into overload and exercises shedding.  Latency percentiles are
    client-observed end-to-end times of completed requests. *)

type summary = {
  requests : int;
  completed : int;
  rejected_overload : int;
  deadline_expired : int;
  other_rejected : int;  (** invalid / closed / failed *)
  wall : float;
  throughput : float;  (** completed requests per wall second *)
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  latency_mean : float;
  latency_max : float;
}

val run :
  server:Server.t ->
  make_input:(int -> Twq_tensor.Tensor.t) ->
  requests:int ->
  ?concurrency:int ->
  ?rate:float ->
  ?deadline:float ->
  unit ->
  summary
(** [concurrency] is clamped to [1, 64] (and to [requests]); [rate] is in
    requests/second over the whole run, 0 = unpaced closed loop;
    [deadline] is the per-request relative deadline in seconds. *)

val summary_to_json : summary -> string
val summary_to_text : summary -> string
