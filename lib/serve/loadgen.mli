(** Load generators.

    {!run} is the closed-loop generator for an in-process {!Server.t}:
    [concurrency] client domains each keep one request outstanding
    (claim id, optionally wait for the paced start slot, submit, await,
    record).  With [rate] > 0, request [i] does not start before
    [t0 + i/rate], so a rate above the server's capacity drives it into
    overload and exercises shedding.

    {!run_poisson} is the open-loop generator for wire endpoints (shard
    or router): arrivals follow a deterministic pre-drawn Poisson
    schedule and latency is charged from each request's {e scheduled}
    arrival instant — the coordinated-omission correction, so a stalled
    fleet cannot hide its stall by slowing the clients down.

    Both report latency split server-side into queue wait vs service
    time (from the server's phase measurements), because a saturated
    queue and a slow model are different problems. *)

type summary = {
  requests : int;
  completed : int;
  rejected_overload : int;
  deadline_expired : int;
  other_rejected : int;  (** invalid / closed / failed *)
  wall : float;
  throughput : float;  (** completed requests per wall second *)
  latency_p50 : float;
  latency_p95 : float;
  latency_p99 : float;
  latency_mean : float;
  latency_max : float;
  queue_wait : Metrics.hsnap;
      (** server-side submit → batch-dispatch, per request *)
  service : Metrics.hsnap;  (** server-side compute, per batch *)
}

val run :
  server:Server.t ->
  make_input:(int -> Twq_tensor.Tensor.t) ->
  requests:int ->
  ?concurrency:int ->
  ?rate:float ->
  ?deadline:float ->
  unit ->
  summary
(** [concurrency] is clamped to [1, 64] (and to [requests]); [rate] is in
    requests/second over the whole run, 0 = unpaced closed loop;
    [deadline] is the per-request relative deadline in seconds.  The
    phase snapshots are read from [server]'s metrics after the run, so
    they cover everything that server processed. *)

val summary_to_json : summary -> string
val summary_to_text : summary -> string

(** {2 Open-loop Poisson generation over the wire} *)

type slo_summary = {
  p_requests : int;
  p_completed : int;  (** answered with logits *)
  p_overloaded : int;  (** typed backpressure *)
  p_expired : int;
  p_other_rejected : int;  (** invalid / closed / failed / no-model /
                               unavailable *)
  p_lost : int;
      (** scheduled but never answered after exhausting the retry
          policy (default: a single attempt, no retry — lost acks are
          what the chaos smoke measures) *)
  p_retries : int;
      (** client-side resends granted by the retry policy; always 0
          under the default {!Retry.no_retry} *)
  p_budget_violations : int;
      (** Logits replies whose server-reported queue wait alone
          exceeded the request's deadline budget — nonzero means
          deadline enforcement failed somewhere in the fleet *)
  p_wall : float;
  p_offered_rate : float;
  p_throughput : float;
  p_slo_budget : float;  (** seconds *)
  p_slo_attained : float;
      (** completed-within-budget / scheduled requests — lost and
          rejected requests count against attainment *)
  p_latency_p50 : float;  (** from scheduled arrival (open loop) *)
  p_latency_p95 : float;
  p_latency_p99 : float;
  p_latency_mean : float;
  p_latency_max : float;
  p_queue_wait_p50 : float;  (** server-reported phase durations *)
  p_queue_wait_p95 : float;
  p_queue_wait_p99 : float;
  p_service_p50 : float;
  p_service_p95 : float;
  p_service_p99 : float;
}

val run_poisson :
  connect:(unit -> (Shard_client.t, Shard_client.error) result) ->
  make_input:(int -> Twq_tensor.Tensor.t) ->
  requests:int ->
  rate:float ->
  slo:float ->
  ?connections:int ->
  ?seed:int ->
  ?retry:Retry.policy ->
  ?deadline:float ->
  unit ->
  slo_summary
(** [connect] opens one connection per client thread (reopened after a
    transport error).  [rate] is the offered Poisson rate in req/s and
    [slo] the per-request latency budget in seconds, both required;
    [seed] fixes the arrival schedule and the retry jitter.  [retry]
    (default {!Retry.no_retry}) grants client-side resends after
    transport failures; each resend is tallied in [p_retries] rather
    than silently masking faults, and latency stays charged to the
    original scheduled arrival.  Request [i] is sent with routing key
    ["req-<i>"], so a router spreads the run across its ring.
    @raise Invalid_argument on non-positive [rate]/[slo] or negative
    [requests]. *)

val slo_to_json : slo_summary -> string
val slo_to_text : slo_summary -> string
