(** Length-prefixed binary wire protocol for the serving fleet.

    Every message travels in one frame:

    {v
      offset size
      0      4    magic "TWQW"
      4      1    protocol version (1)
      5      1    message tag
      6      8    request id (little-endian int64, echoed in replies)
      14     4    payload length N (little-endian uint32)
      18     N    payload (per-tag binary body)
      18+N   4    CRC-32 of bytes [4, 18+N) (little-endian)
    v}

    Integers are little-endian; floats travel as their IEEE-754 bit
    patterns, so tensors round-trip bit-exactly.  The CRC
    ({!Twq_util.Crc32}) covers everything after the magic, so any
    single-byte corruption of header or payload is detected.

    Decoding is incremental: {!feed} arbitrary chunks (a byte at a time
    if the socket delivers them that way) into a {!decoder} and {!next}
    resumes exactly where the previous call stopped.  Malformed input
    never raises — it surfaces as a typed {!error}, after which the
    decoder is poisoned (framing is lost, the connection must be
    dropped). *)

type error =
  | Bad_magic
  | Unsupported_version of int
  | Unknown_tag of int
  | Oversized of { len : int; limit : int }
  | Crc_mismatch of { expected : int; got : int }
      (** [expected] is the CRC stored in the frame, [got] the one
          computed over the received bytes. *)
  | Malformed of string  (** payload body fails validation *)
  | Truncated  (** input ended mid-frame ({!decode_string} / EOF) *)
  | Trailing of int  (** bytes left after the frame ({!decode_string}) *)

val error_to_string : error -> string

(** Result of one inference, as carried on the wire.  [queue_wait] and
    [service] are the server-side phase durations in seconds, so a
    client can attribute latency without trusting its own clock. *)
type outcome =
  | Logits of { queue_wait : float; service : float; data : float array }
  | Overloaded  (** typed backpressure: admission queue full *)
  | Expired
  | Invalid of string
  | Closed
  | Failed of string
  | No_model  (** shard is up but nothing has been activated yet *)
  | Unavailable of string  (** router: no live shard for this key *)

type msg =
  | Infer of {
      key : string;  (** routing key (consistent-hashed by the router) *)
      deadline : float option;  (** relative seconds *)
      dims : int array;
      data : float array;
    }
  | Infer_reply of outcome
  | Ping
  | Pong of {
      healthy : bool;
      queue_depth : int;
      capacity : int;
      draining : bool;
    }
  | Publish of {
      name : string;
      version : int;
      input_dims : int array;
      payload : string;  (** serialized model ({!Model.to_string}) *)
    }
  | Publish_reply of { ok : bool; reason : string }
  | Activate of { name : string; version : int }
  | Activate_reply of { ok : bool; reason : string }
  | Model_info of { name : string }
  | Model_info_reply of { active : int option; versions : int list }
  | Stats
  | Stats_reply of string  (** JSON snapshot *)
  | Drain
  | Drain_reply
  | Nack of string  (** receiver cannot serve this message type *)

val encode : id:int64 -> msg -> string
(** One complete frame. *)

(** {2 Incremental decoding} *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] bounds the payload length (default 64 MiB) so a corrupt
    length field cannot allocate unboundedly. *)

val feed : decoder -> ?pos:int -> ?len:int -> string -> unit
(** Append bytes.  No-op once the decoder is poisoned. *)

val available : decoder -> int
(** Unconsumed buffered bytes (a partially received frame counts). *)

val next : decoder -> [ `Frame of int64 * msg | `Need_more | `Error of error ]
(** Consume and return the next complete frame.  [`Need_more] means the
    buffered bytes form only a prefix; feeding more input and calling
    {!next} again resumes the parse.  After [`Error], every subsequent
    call returns the same error. *)

val decode_string : ?max_frame:int -> string -> (int64 * msg, error) result
(** The whole string must be exactly one frame: a prefix yields
    [Truncated], leftover bytes yield [Trailing]. *)

(** {2 Blocking framed IO over a file descriptor}

    Both may raise [Unix.Unix_error] (e.g. [EPIPE], or [EAGAIN] when a
    receive timeout is set on the socket); callers own the policy. *)

val write_frame : Unix.file_descr -> id:int64 -> msg -> unit

val read_frame :
  Unix.file_descr -> decoder -> (int64 * msg, [ `Eof | `Error of error ]) result
(** Reads until the decoder completes a frame.  EOF mid-frame is
    [`Error Truncated]; EOF on a frame boundary is [`Eof]. *)
