type t = { shape : Shape.t; data : float array }

let create shape v =
  Shape.validate shape;
  { shape = Array.copy shape; data = Array.make (Shape.numel shape) v }

let zeros shape = create shape 0.0
let ones shape = create shape 1.0

let of_array shape data =
  Shape.validate shape;
  if Array.length data <> Shape.numel shape then
    invalid_arg "Tensor.of_array: length mismatch";
  { shape = Array.copy shape; data }

let scalar v = of_array [| 1 |] [| v |]

let init shape f =
  Shape.validate shape;
  let strides = Shape.strides shape in
  let n = Shape.numel shape in
  let rank = Array.length shape in
  let idx = Array.make rank 0 in
  let data = Array.make n 0.0 in
  for flat = 0 to n - 1 do
    let rem = ref flat in
    for d = 0 to rank - 1 do
      idx.(d) <- !rem / strides.(d);
      rem := !rem mod strides.(d)
    done;
    data.(flat) <- f idx
  done;
  { shape = Array.copy shape; data }

let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let numel t = Array.length t.data
let rank t = Array.length t.shape
let dim t i = t.shape.(i)

let reshape t shape =
  Shape.validate shape;
  if Shape.numel shape <> Array.length t.data then
    invalid_arg "Tensor.reshape: element count mismatch";
  { shape = Array.copy shape; data = t.data }

(* Row-major offset computed inline (Horner over the dims) so the generic
   accessors don't allocate a stride array per element. *)
let offset_of t idx =
  let s = t.shape in
  let off = ref idx.(0) in
  for d = 1 to Array.length s - 1 do
    off := (!off * s.(d)) + idx.(d)
  done;
  !off

let get t idx = t.data.(offset_of t idx)
let set t idx v = t.data.(offset_of t idx) <- v

let get2 t i j = t.data.((i * t.shape.(1)) + j)
let set2 t i j v = t.data.((i * t.shape.(1)) + j) <- v

let get4 t n c h w =
  let s = t.shape in
  t.data.((((((n * s.(1)) + c) * s.(2)) + h) * s.(3)) + w)

let set4 t n c h w v =
  let s = t.shape in
  t.data.((((((n * s.(1)) + c) * s.(2)) + h) * s.(3)) + w) <- v

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.map2: shape mismatch";
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let iteri_flat f t = Array.iteri f t.data

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let scale k = map (fun x -> k *. x)
let neg = map (fun x -> -.x)

let sum t = Array.fold_left ( +. ) 0.0 t.data

let dot a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.dot: shape mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.data.(i))) a.data;
  !acc

let sumsq t = dot t t
let max_abs t = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let blit ~src ~dst =
  if not (Shape.equal src.shape dst.shape) then
    invalid_arg "Tensor.blit: shape mismatch";
  Array.blit src.data 0 dst.data 0 (Array.length src.data)

let rand_gaussian rng shape ~mu ~sigma =
  Shape.validate shape;
  { shape = Array.copy shape;
    data = Array.init (Shape.numel shape) (fun _ -> Twq_util.Rng.gaussian rng ~mu ~sigma) }

let rand_uniform rng shape ~lo ~hi =
  Shape.validate shape;
  { shape = Array.copy shape;
    data =
      Array.init (Shape.numel shape) (fun _ ->
          lo +. Twq_util.Rng.float rng (hi -. lo)) }

let approx_equal ?(tol = 1e-9) a b =
  Shape.equal a.shape b.shape
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp ppf t =
  Format.fprintf ppf "Tensor%s" (Shape.to_string t.shape);
  if numel t <= 16 then begin
    Format.fprintf ppf " [";
    Array.iteri
      (fun i x ->
        if i > 0 then Format.fprintf ppf "; ";
        Format.fprintf ppf "%g" x)
      t.data;
    Format.fprintf ppf "]"
  end
