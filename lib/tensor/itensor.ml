type t = { shape : Shape.t; data : int array }

let create shape v =
  Shape.validate shape;
  { shape = Array.copy shape; data = Array.make (Shape.numel shape) v }

let zeros shape = create shape 0

let of_array shape data =
  Shape.validate shape;
  if Array.length data <> Shape.numel shape then
    invalid_arg "Itensor.of_array: length mismatch";
  { shape = Array.copy shape; data }

let init shape f =
  Shape.validate shape;
  let strides = Shape.strides shape in
  let rank = Array.length shape in
  let idx = Array.make rank 0 in
  let data =
    Array.init (Shape.numel shape) (fun flat ->
        let rem = ref flat in
        for d = 0 to rank - 1 do
          idx.(d) <- !rem / strides.(d);
          rem := !rem mod strides.(d)
        done;
        f idx)
  in
  { shape = Array.copy shape; data }

let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }
let numel t = Array.length t.data
let dim t i = t.shape.(i)

let reshape t shape =
  Shape.validate shape;
  if Shape.numel shape <> Array.length t.data then
    invalid_arg "Itensor.reshape: element count mismatch";
  { shape = Array.copy shape; data = t.data }

(* Offsets inline, as in {!Tensor} — no per-element stride allocation. *)
let offset_of t idx =
  let s = t.shape in
  let off = ref idx.(0) in
  for d = 1 to Array.length s - 1 do
    off := (!off * s.(d)) + idx.(d)
  done;
  !off

let get t idx = t.data.(offset_of t idx)
let set t idx v = t.data.(offset_of t idx) <- v

let get2 t i j = t.data.((i * t.shape.(1)) + j)
let set2 t i j v = t.data.((i * t.shape.(1)) + j) <- v

let get4 t n c h w =
  let s = t.shape in
  t.data.((((((n * s.(1)) + c) * s.(2)) + h) * s.(3)) + w)

let set4 t n c h w v =
  let s = t.shape in
  t.data.((((((n * s.(1)) + c) * s.(2)) + h) * s.(3)) + w) <- v

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Itensor.map2: shape mismatch";
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let add = map2 ( + )
let mul = map2 ( * )

let matmul a b =
  if Array.length a.shape <> 2 || Array.length b.shape <> 2 then
    invalid_arg "Itensor.matmul: expected 2-D tensors";
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg "Itensor.matmul: inner dims differ";
  let out = zeros [| m; n |] in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = a.data.((i * k) + p) in
      if aip <> 0 then
        for j = 0 to n - 1 do
          out.data.((i * n) + j) <-
            out.data.((i * n) + j) + (aip * b.data.((p * n) + j))
        done
    done
  done;
  out

let max_abs t = Array.fold_left (fun acc x -> Stdlib.max acc (abs x)) 0 t.data

let clamp_int ~bits v =
  let hi = (1 lsl (bits - 1)) - 1 in
  let lo = -(hi + 1) in
  if v > hi then hi else if v < lo then lo else v

let clamp_bits ~bits t = map (clamp_int ~bits) t

let round_shift v k =
  if k < 0 then invalid_arg "Itensor.round_shift: negative shift";
  if k = 0 then v
  else begin
    let half = 1 lsl (k - 1) in
    if v >= 0 then (v + half) asr k else -((-v + half) asr k)
  end

let of_tensor_round (t : Tensor.t) =
  { shape = Array.copy t.Tensor.shape;
    data = Array.map (fun x -> int_of_float (Float.round x)) t.Tensor.data }

let to_tensor t =
  Tensor.of_array (Array.copy t.shape) (Array.map float_of_int t.data)

let equal a b = Shape.equal a.shape b.shape && a.data = b.data

let pp ppf t =
  Format.fprintf ppf "Itensor%s" (Shape.to_string t.shape);
  if numel t <= 16 then begin
    Format.fprintf ppf " [";
    Array.iteri
      (fun i x ->
        if i > 0 then Format.fprintf ppf "; ";
        Format.fprintf ppf "%d" x)
      t.data;
    Format.fprintf ppf "]"
  end
