type t = {
  id : int;
  mutable theta : float;  (* log2 t *)
  pow2 : bool;
  learnable : bool;
  mutable g : float;
  mutable m : float;
  mutable v : float;
  mutable steps : int;
}

let counter = Atomic.make 0

let create ?(learnable = true) ~pow2 ~init () =
  if init <= 0.0 then invalid_arg "Scale_param.create: non-positive scale";
  { id = Atomic.fetch_and_add counter 1; theta = Float.log2 init; pow2;
    learnable; g = 0.0; m = 0.0; v = 0.0; steps = 0 }

let value p =
  if p.pow2 then Float.pow 2.0 (Float.ceil p.theta) else Float.pow 2.0 p.theta

let set_from_calibration p s =
  if s <= 0.0 then invalid_arg "Scale_param.set_from_calibration: non-positive scale";
  p.theta <- Float.log2 s

let learnable p = p.learnable

(* Mirror of [Var]'s per-domain gradient sink, for the scalar scale
   gradients that Wa_conv's backward pushes directly into shared
   Scale_param records. *)
type sink = { buffers : (int, float ref) Hashtbl.t; params : t list }

let current_sink : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let sink_create params =
  let buffers = Hashtbl.create (List.length params) in
  List.iter (fun p -> Hashtbl.replace buffers p.id (ref 0.0)) params;
  { buffers; params }

let with_sink sink f =
  let prev = Domain.DLS.get current_sink in
  Domain.DLS.set current_sink (Some sink);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_sink prev) f

let accumulate_grad p g =
  match Domain.DLS.get current_sink with
  | Some s -> (
      match Hashtbl.find_opt s.buffers p.id with
      | Some r -> r := !r +. g
      | None -> p.g <- p.g +. g)
  | None -> p.g <- p.g +. g

let sink_merge sink =
  List.iter
    (fun p ->
      match Hashtbl.find_opt sink.buffers p.id with
      | Some r -> p.g <- p.g +. !r
      | None -> ())
    sink.params

let zero_grad p = p.g <- 0.0
let grad p = p.g
let log2_t p = p.theta

let adam_step ?(lr = 0.01) ?(beta1 = 0.9) ?(beta2 = 0.99) ?(eps = 1e-8) p =
  if p.learnable then
    if not (Float.is_finite p.g) then
      (* A poisoned gradient must not enter the first/second-moment EMAs
         (they never forget it); drop the step instead. *)
      p.g <- 0.0
    else begin
      p.steps <- p.steps + 1;
      p.m <- (beta1 *. p.m) +. ((1.0 -. beta1) *. p.g);
      p.v <- (beta2 *. p.v) +. ((1.0 -. beta2) *. p.g *. p.g);
      let m_hat = p.m /. (1.0 -. Float.pow beta1 (float_of_int p.steps)) in
      let v_hat = p.v /. (1.0 -. Float.pow beta2 (float_of_int p.steps)) in
      p.theta <- p.theta -. (lr *. m_hat /. (sqrt v_hat +. eps));
      p.g <- 0.0
    end

type snapshot = {
  snap_theta : float;
  snap_g : float;
  snap_m : float;
  snap_v : float;
  snap_steps : int;
}

let snapshot p =
  { snap_theta = p.theta; snap_g = p.g; snap_m = p.m; snap_v = p.v;
    snap_steps = p.steps }

let restore p s =
  p.theta <- s.snap_theta;
  p.g <- s.snap_g;
  p.m <- s.snap_m;
  p.v <- s.snap_v;
  p.steps <- s.snap_steps
