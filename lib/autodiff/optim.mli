(** Optimizers.

    Following the paper's training recipe: plain SGD (with optional momentum
    and weight decay) for the network parameters, Adam for the quantization
    scale parameters ({!Scale_param.adam_step}). *)

type sgd

val sgd : ?momentum:float -> ?weight_decay:float -> lr:float -> Var.t list -> sgd
(** The parameter list is fixed at creation (momentum buffers attach to it). *)

val sgd_step : sgd -> unit
(** Apply one update from the accumulated gradients, then zero them.
    Parameters whose gradient contains a non-finite value are skipped
    (gradient cleared, velocity and weights untouched): NaNs must never
    reach the momentum buffers, from which they would poison every
    subsequent step. *)

val set_lr : sgd -> float -> unit
val lr : sgd -> float

val zero_grads : Var.t list -> unit

val grad_norm : Var.t list -> float
(** Global L2 norm of all parameter gradients (diagnostics). *)

val grads_finite : Var.t list -> bool
(** [true] iff every accumulated gradient value is finite — the
    divergence check run before an optimizer step is trusted. *)

val clip_grad_norm : Var.t list -> max_norm:float -> unit
(** No-op when the global norm is non-finite (scaling by [NaN] would
    corrupt all gradients); the caller's divergence guard handles it. *)

(** {2 State capture} — momentum buffers for training checkpoints, in the
    creation-time parameter order. *)

val export_velocity : sgd -> float array list

val import_velocity : sgd -> float array list -> unit
(** @raise Invalid_argument on a buffer count or size mismatch. *)
