(** Reverse-mode automatic differentiation on tensors (dynamic tape).

    A {!t} wraps a value tensor and its gradient accumulator; operations in
    {!Fn} record backward closures.  Calling {!backward} on a scalar loss
    topologically sorts the tape and accumulates gradients into every
    reachable node.  This is the training substrate for the Winograd-aware /
    tap-wise quantization-aware experiments. *)

type t = {
  id : int;
  data : Twq_tensor.Tensor.t;
  grad : Twq_tensor.Tensor.t;  (** same shape as [data]; accumulated *)
  parents : t list;
  backward : unit -> unit;     (** pushes [grad] into the parents *)
}

val of_tensor : Twq_tensor.Tensor.t -> t
(** A leaf node (parameter or input). *)

val make : data:Twq_tensor.Tensor.t -> parents:t list -> backward:(t -> unit) -> t
(** Internal node; [backward] receives the node itself (so the closure can
    read its accumulated gradient). *)

val value : t -> Twq_tensor.Tensor.t
val grad : t -> Twq_tensor.Tensor.t

val zero_grad : t -> unit
(** Reset this node's gradient accumulator. *)

val backward : t -> unit
(** Seed the node's gradient with ones and back-propagate through the tape.
    Usually called on a scalar (1-element) loss. *)

val accumulate : t -> Twq_tensor.Tensor.t -> unit
(** [accumulate v g] adds [g] into [v.grad] (shape-checked) — or into the
    current domain's sink buffer for [v], if a sink registering [v] is
    installed (see {!with_sink}). *)

(** {2 Gradient sinks (data-parallel training)}

    A sink diverts gradient contributions to a chosen set of {e shared
    leaves} (model parameters) into private buffers, so backward passes
    over tapes that share those leaves can run on several domains
    concurrently.  The tape interior is always domain-private and is
    unaffected.  Typical use: one sink per batch chunk, backward inside
    {!with_sink}, then {!sink_merge} in deterministic chunk order. *)

type sink

val sink_create : t list -> sink
(** Fresh zero buffers for the given leaves. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install the sink on the current domain for the duration of [f]
    (nestable; the previous sink is restored). *)

val sink_merge : sink -> unit
(** Add the sink's buffers into the leaves' shared [grad] tensors. *)
