module Tensor = Twq_tensor.Tensor

type sgd = {
  mutable lr : float;
  momentum : float;
  weight_decay : float;
  params : Var.t list;
  velocity : (int, float array) Hashtbl.t;
}

let sgd ?(momentum = 0.0) ?(weight_decay = 0.0) ~lr params =
  let velocity = Hashtbl.create (List.length params) in
  List.iter
    (fun p ->
      Hashtbl.replace velocity p.Var.id
        (Array.make (Tensor.numel p.Var.data) 0.0))
    params;
  { lr; momentum; weight_decay; params; velocity }

let set_lr o lr = o.lr <- lr
let lr o = o.lr

let finite_array a = Array.for_all Float.is_finite a

let grads_finite params =
  List.for_all (fun p -> finite_array p.Var.grad.Tensor.data) params

let sgd_step o =
  List.iter
    (fun p ->
      let grad = p.Var.grad.Tensor.data in
      (* A non-finite gradient must never reach the momentum buffer — once
         a NaN enters the velocity it poisons every later step.  Drop the
         update for this parameter; the gradient is still cleared. *)
      if finite_array grad then begin
        let v = Hashtbl.find o.velocity p.Var.id in
        let data = p.Var.data.Tensor.data in
        for i = 0 to Array.length data - 1 do
          let g = grad.(i) +. (o.weight_decay *. data.(i)) in
          v.(i) <- (o.momentum *. v.(i)) +. g;
          data.(i) <- data.(i) -. (o.lr *. v.(i))
        done
      end;
      Var.zero_grad p)
    o.params

let zero_grads params = List.iter Var.zero_grad params

let grad_norm params =
  let acc =
    List.fold_left (fun a p -> a +. Tensor.sumsq p.Var.grad) 0.0 params
  in
  sqrt acc

let clip_grad_norm params ~max_norm =
  let n = grad_norm params in
  (* A non-finite norm would turn every gradient into NaN; leave them for
     the caller's divergence guard instead. *)
  if Float.is_finite n && n > max_norm && n > 0.0 then begin
    let k = max_norm /. n in
    List.iter
      (fun p ->
        let g = p.Var.grad.Tensor.data in
        for i = 0 to Array.length g - 1 do
          g.(i) <- g.(i) *. k
        done)
      params
  end

let export_velocity o =
  List.map (fun p -> Array.copy (Hashtbl.find o.velocity p.Var.id)) o.params

let import_velocity o vs =
  match
    List.iter2
      (fun p v ->
        let dst = Hashtbl.find o.velocity p.Var.id in
        if Array.length dst <> Array.length v then
          invalid_arg "Optim.import_velocity: buffer size mismatch";
        Array.blit v 0 dst 0 (Array.length v))
      o.params vs
  with
  | () -> ()
  | exception Invalid_argument _ ->
      invalid_arg "Optim.import_velocity: buffer count/size mismatch"
