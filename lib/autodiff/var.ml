module Tensor = Twq_tensor.Tensor

type t = {
  id : int;
  data : Tensor.t;
  grad : Tensor.t;
  parents : t list;
  backward : unit -> unit;
}

(* Atomic so tapes can be built concurrently from several domains
   (data-parallel evaluation / training); ids stay unique process-wide. *)
let counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add counter 1 + 1

let of_tensor data =
  {
    id = next_id ();
    data;
    grad = Tensor.zeros data.Tensor.shape;
    parents = [];
    backward = (fun () -> ());
  }

let make ~data ~parents ~backward =
  let rec node =
    {
      id = next_id ();
      data;
      grad = Tensor.zeros data.Tensor.shape;
      parents;
      backward = (fun () -> backward node);
    }
  in
  node

let value v = v.data
let grad v = v.grad
let zero_grad v = Tensor.fill v.grad 0.0

(* Per-domain gradient sink: when installed, gradient contributions to
   the registered leaves are diverted into private buffers instead of the
   shared [grad] tensors, so several domains can run backward passes over
   tapes that share leaf parameters without write races.  Non-registered
   nodes (the tape interior, which is domain-private) accumulate as
   usual. *)
type sink = { buffers : (int, Tensor.t) Hashtbl.t; leaves : t list }

let current_sink : sink option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let sink_create leaves =
  let buffers = Hashtbl.create (List.length leaves) in
  List.iter
    (fun v -> Hashtbl.replace buffers v.id (Tensor.zeros v.grad.Tensor.shape))
    leaves;
  { buffers; leaves }

let with_sink sink f =
  let prev = Domain.DLS.get current_sink in
  Domain.DLS.set current_sink (Some sink);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_sink prev) f

let accumulate v g =
  if not (Twq_tensor.Shape.equal g.Tensor.shape v.grad.Tensor.shape) then
    invalid_arg "Var.accumulate: gradient shape mismatch";
  let target =
    match Domain.DLS.get current_sink with
    | Some s -> (
        match Hashtbl.find_opt s.buffers v.id with
        | Some buf -> buf
        | None -> v.grad)
    | None -> v.grad
  in
  Array.iteri
    (fun i x -> target.Tensor.data.(i) <- target.Tensor.data.(i) +. x)
    g.Tensor.data

let sink_merge sink =
  List.iter
    (fun v ->
      match Hashtbl.find_opt sink.buffers v.id with
      | None -> ()
      | Some buf ->
          Array.iteri
            (fun i x -> v.grad.Tensor.data.(i) <- v.grad.Tensor.data.(i) +. x)
            buf.Tensor.data)
    sink.leaves

let backward root =
  (* Topological order via DFS, then reverse. *)
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit v =
    if not (Hashtbl.mem visited v.id) then begin
      Hashtbl.add visited v.id ();
      List.iter visit v.parents;
      order := v :: !order
    end
  in
  visit root;
  Tensor.fill root.grad 1.0;
  List.iter (fun v -> v.backward ()) !order
