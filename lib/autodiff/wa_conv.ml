module Tensor = Twq_tensor.Tensor
module Shape = Twq_tensor.Shape
module Transform = Twq_winograd.Transform
module Quantizer = Twq_quant.Quantizer

type mode = Static | Learned

type t = {
  variant : Transform.variant;
  wino_bits : int;
  pow2 : bool;
  tapwise : bool;
  mode : mode;
  pad : int;
  sb : Scale_param.t array array;
  sg : Scale_param.t array array;
  mutable initialized : bool;
  mutable frozen : bool;
  momentum : float;  (* EMA momentum of static running-max calibration *)
  b_max : float array array;  (* running per-tap maxima *)
  g_max : float array array;
}

let create ~variant ?(wino_bits = 8) ?(pow2 = true) ?(tapwise = true)
    ?(mode = Static) ~pad () =
  let t = Transform.t variant in
  let learnable = mode = Learned in
  let mk () =
    Array.init t (fun _ ->
        Array.init t (fun _ -> Scale_param.create ~learnable ~pow2 ~init:1.0 ()))
  in
  {
    variant;
    wino_bits;
    pow2;
    tapwise;
    mode;
    pad;
    sb = mk ();
    sg = mk ();
    initialized = false;
    frozen = false;
    momentum = 0.9;
    b_max = Array.make_matrix t t 0.0;
    g_max = Array.make_matrix t t 0.0;
  }

let set_frozen l b = l.frozen <- b

type snapshot = {
  snap_sb : Scale_param.snapshot array array;
  snap_sg : Scale_param.snapshot array array;
  snap_initialized : bool;
  snap_b_max : float array array;
  snap_g_max : float array array;
}

let snapshot l =
  {
    snap_sb = Array.map (Array.map Scale_param.snapshot) l.sb;
    snap_sg = Array.map (Array.map Scale_param.snapshot) l.sg;
    snap_initialized = l.initialized;
    snap_b_max = Array.map Array.copy l.b_max;
    snap_g_max = Array.map Array.copy l.g_max;
  }

let restore l s =
  let t = Transform.t l.variant in
  if
    Array.length s.snap_sb <> t || Array.length s.snap_sg <> t
    || Array.length s.snap_b_max <> t
    || Array.length s.snap_g_max <> t
  then invalid_arg "Wa_conv.restore: snapshot grid size mismatch";
  let restore_grid dst src =
    Array.iteri
      (fun i row -> Array.iteri (fun j p -> Scale_param.restore p src.(i).(j)) row)
      dst
  in
  restore_grid l.sb s.snap_sb;
  restore_grid l.sg s.snap_sg;
  l.initialized <- s.snap_initialized;
  Array.iteri (fun i row -> Array.blit row 0 l.b_max.(i) 0 t) s.snap_b_max;
  Array.iteri (fun i row -> Array.blit row 0 l.g_max.(i) 0 t) s.snap_g_max

let scale_at l grid i j = if l.tapwise then grid.(i).(j) else grid.(0).(0)

let scales l =
  let t = Transform.t l.variant in
  let acc = ref [] in
  for i = t - 1 downto 0 do
    for j = t - 1 downto 0 do
      if l.tapwise || (i = 0 && j = 0) then
        acc := scale_at l l.sb i j :: scale_at l l.sg i j :: !acc
    done
  done;
  !acc

let grid_values l grid =
  let t = Transform.t l.variant in
  Array.init t (fun i ->
      Array.init t (fun j -> Scale_param.value (scale_at l grid i j)))

let input_scale_grid l = grid_values l l.sb
let weight_scale_grid l = grid_values l l.sg

(* Fold this forward's observed per-tap maxima into the EMA and refresh the
   scale parameters (static calibration). *)
let update_static_scales l ~batch_b ~batch_g =
  let t = Transform.t l.variant in
  let fold running batch =
    for i = 0 to t - 1 do
      for j = 0 to t - 1 do
        running.(i).(j) <-
          (if l.initialized then
             (l.momentum *. running.(i).(j)) +. ((1.0 -. l.momentum) *. batch.(i).(j))
           else batch.(i).(j))
      done
    done
  in
  fold l.b_max batch_b;
  fold l.g_max batch_g;
  let global m =
    Array.fold_left (fun a row -> Array.fold_left Float.max a row) 0.0 m
  in
  let apply grid running =
    for i = 0 to t - 1 do
      for j = 0 to t - 1 do
        let mx = if l.tapwise then running.(i).(j) else global running in
        let s = Quantizer.scale_for ~bits:l.wino_bits ~max_abs:mx in
        Scale_param.set_from_calibration grid.(i).(j) s
      done
    done
  in
  apply l.sb l.b_max;
  apply l.sg l.g_max;
  l.initialized <- true

(* 2-D sandwich p · s · qᵀ on t×t float matrices given as flat tensors. *)
let sandwich (p : Tensor.t) (s : Tensor.t) (q : Tensor.t) =
  Twq_tensor.Ops.(matmul (matmul p s) (transpose q))

let forward l ~x ~w =
  let variant = l.variant in
  let m = Transform.m variant and t = Transform.t variant in
  let bits = l.wino_bits in
  let qlo = float_of_int (Quantizer.qmin ~bits) in
  let qhi = float_of_int (Quantizer.qmax ~bits) in
  let bt = Transform.bt variant and g = Transform.g variant and at = Transform.at variant in
  let xd = x.Var.data and wd = w.Var.data in
  let n = Tensor.dim xd 0 and cin = Tensor.dim xd 1 in
  let h = Tensor.dim xd 2 and wdt = Tensor.dim xd 3 in
  let cout = Tensor.dim wd 0 in
  if Tensor.dim wd 1 <> cin then invalid_arg "Wa_conv.forward: channel mismatch";
  if Tensor.dim wd 2 <> 3 || Tensor.dim wd 3 <> 3 then
    invalid_arg "Wa_conv.forward: 3x3 kernels required";
  let pad = l.pad in
  let ho, wo = Shape.conv2d_out ~h ~w:wdt ~kh:3 ~kw:3 ~stride:1 ~pad in
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  (* ---- raw Winograd-domain weights. *)
  let w_raw =
    Array.init cout (fun co ->
        Array.init cin (fun ci ->
            let f = Tensor.init [| 3; 3 |] (fun i -> Tensor.get4 wd co ci i.(0) i.(1)) in
            sandwich g f g))
  in
  (* ---- raw input tiles. *)
  let x_raw =
    Array.init n (fun ni ->
        Array.init (n_th * n_tw) (fun tile_idx ->
            let th = tile_idx / n_tw and tw = tile_idx mod n_tw in
            Array.init cin (fun ci ->
                let tile =
                  Tensor.init [| t; t |] (fun idx ->
                      let hi = (th * m) + idx.(0) - pad
                      and wi = (tw * m) + idx.(1) - pad in
                      if hi < 0 || hi >= h || wi < 0 || wi >= wdt then 0.0
                      else Tensor.get4 xd ni ci hi wi)
                in
                sandwich bt tile bt)))
  in
  (* ---- static calibration from this forward's maxima (also used as the
     one-shot initialisation of learned scales). *)
  let observe_tile_maxima acc (tile : Tensor.t) =
    for i = 0 to t - 1 do
      for j = 0 to t - 1 do
        acc.(i).(j) <- Float.max acc.(i).(j) (Float.abs (Tensor.get2 tile i j))
      done
    done
  in
  let needs_calibration =
    (l.mode = Static && not l.frozen) || not l.initialized
  in
  if needs_calibration then begin
    let batch_b = Array.make_matrix t t 0.0 and batch_g = Array.make_matrix t t 0.0 in
    Array.iter
      (fun per_tile ->
        Array.iter (fun per_ci -> Array.iter (observe_tile_maxima batch_b) per_ci) per_tile)
      x_raw;
    Array.iter (fun per_co -> Array.iter (observe_tile_maxima batch_g) per_co) w_raw;
    update_static_scales l ~batch_b ~batch_g
  end;
  let sb = grid_values l l.sb and sg = grid_values l l.sg in
  (* ---- fake-quantize weights and inputs in the Winograd domain. *)
  let fq (raw : Tensor.t) scales =
    Tensor.init [| t; t |] (fun idx ->
        let s = scales.(idx.(0)).(idx.(1)) in
        let r = Tensor.get2 raw idx.(0) idx.(1) /. s in
        let q = Float.max qlo (Float.min qhi (Float.round r)) in
        s *. q)
  in
  let w_fq = Array.map (Array.map (fun raw -> fq raw sg)) w_raw in
  let x_fq = Array.map (Array.map (Array.map (fun raw -> fq raw sb))) x_raw in
  (* ---- elementwise multiply, accumulate, back-transform. *)
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  for ni = 0 to n - 1 do
    for tile_idx = 0 to (n_th * n_tw) - 1 do
      let th = tile_idx / n_tw and tw = tile_idx mod n_tw in
      for co = 0 to cout - 1 do
        let z = Tensor.zeros [| t; t |] in
        for ci = 0 to cin - 1 do
          let xf = x_fq.(ni).(tile_idx).(ci) and wf = w_fq.(co).(ci) in
          for i = 0 to t - 1 do
            for j = 0 to t - 1 do
              Tensor.set2 z i j
                (Tensor.get2 z i j +. (Tensor.get2 xf i j *. Tensor.get2 wf i j))
            done
          done
        done;
        let y = sandwich at z at in
        for dy = 0 to m - 1 do
          for dx = 0 to m - 1 do
            let oh = (th * m) + dy and ow = (tw * m) + dx in
            if oh < ho && ow < wo then Tensor.set4 out ni co oh ow (Tensor.get2 y dy dx)
          done
        done
      done
    done
  done;
  (* ---- the fused backward. *)
  let backward node =
    let dy = node.Var.grad in
    let a = Twq_tensor.Ops.transpose at in
    (* A (m×t)ᵀ: we need dZ = A · dy_tile · Aᵀ where Y = Aᵀ Z A. *)
    let dx_total = Tensor.zeros xd.Tensor.shape in
    let dw_fq = Array.init cout (fun _ -> Array.init cin (fun _ -> Tensor.zeros [| t; t |])) in
    let b = Twq_tensor.Ops.transpose bt in
    let ln2 = Float.log 2.0 in
    let rail_tol = 1.0 +. 1e-9 in
    for ni = 0 to n - 1 do
      for tile_idx = 0 to (n_th * n_tw) - 1 do
        let th = tile_idx / n_tw and tw = tile_idx mod n_tw in
        let dx_fq = Array.init cin (fun _ -> Tensor.zeros [| t; t |]) in
        for co = 0 to cout - 1 do
          let dy_tile =
            Tensor.init [| m; m |] (fun idx ->
                let oh = (th * m) + idx.(0) and ow = (tw * m) + idx.(1) in
                if oh < ho && ow < wo then Tensor.get4 dy ni co oh ow else 0.0)
          in
          let dz = sandwich a dy_tile a in
          for ci = 0 to cin - 1 do
            let xf = x_fq.(ni).(tile_idx).(ci) and wf = w_fq.(co).(ci) in
            let dwf = dw_fq.(co).(ci) and dxf = dx_fq.(ci) in
            for i = 0 to t - 1 do
              for j = 0 to t - 1 do
                let d = Tensor.get2 dz i j in
                Tensor.set2 dxf i j (Tensor.get2 dxf i j +. (d *. Tensor.get2 wf i j));
                Tensor.set2 dwf i j (Tensor.get2 dwf i j +. (d *. Tensor.get2 xf i j))
              done
            done
          done
        done;
        (* back through the input fake-quant (STE + Eq. 3) and Bᵀ·B. *)
        for ci = 0 to cin - 1 do
          let raw = x_raw.(ni).(tile_idx).(ci) in
          let dxf = dx_fq.(ci) in
          let d_raw = Tensor.zeros [| t; t |] in
          for i = 0 to t - 1 do
            for j = 0 to t - 1 do
              let s = sb.(i).(j) in
              let r = Tensor.get2 raw i j /. s in
              let up = Tensor.get2 dxf i j in
              (* Pass-through inside the calibrated threshold |x| <= s*2^(b-1)
                 (TQT convention): the rail value 2^(b-1) still gets grads.
                 The bounds carry a relative epsilon because the scale
                 round-trips through 2^(log2 s). *)
              if r >= (qlo -. 0.5) *. rail_tol && r <= (qhi +. 1.0) *. rail_tol then
                Tensor.set2 d_raw i j up;
              if l.mode = Learned then begin
                let q_clamped = Float.max qlo (Float.min qhi (Float.round r)) in
                let diff = Float.max qlo (Float.min qhi (q_clamped -. r)) in
                Scale_param.accumulate_grad (scale_at l l.sb i j)
                  (up *. s *. ln2 *. diff)
              end
            done
          done;
          let dx_tile = sandwich b d_raw b in
          for i = 0 to t - 1 do
            for j = 0 to t - 1 do
              let hi = (th * m) + i - pad and wi = (tw * m) + j - pad in
              if hi >= 0 && hi < h && wi >= 0 && wi < wdt then
                Tensor.set4 dx_total ni ci hi wi
                  (Tensor.get4 dx_total ni ci hi wi +. Tensor.get2 dx_tile i j)
            done
          done
        done
      done
    done;
    (* back through the weight fake-quant and G·Gᵀ. *)
    let gt = Twq_tensor.Ops.transpose g in
    let dw_total = Tensor.zeros wd.Tensor.shape in
    for co = 0 to cout - 1 do
      for ci = 0 to cin - 1 do
        let raw = w_raw.(co).(ci) in
        let dwf = dw_fq.(co).(ci) in
        let d_raw = Tensor.zeros [| t; t |] in
        for i = 0 to t - 1 do
          for j = 0 to t - 1 do
            let s = sg.(i).(j) in
            let r = Tensor.get2 raw i j /. s in
            let up = Tensor.get2 dwf i j in
            if r >= (qlo -. 0.5) *. rail_tol && r <= (qhi +. 1.0) *. rail_tol then
              Tensor.set2 d_raw i j up;
            if l.mode = Learned then begin
              let q_clamped = Float.max qlo (Float.min qhi (Float.round r)) in
              let diff = Float.max qlo (Float.min qhi (q_clamped -. r)) in
              Scale_param.accumulate_grad (scale_at l l.sg i j)
                (up *. s *. ln2 *. diff)
            end
          done
        done;
        let dk = sandwich gt d_raw gt in
        (* dk is 3×3: W = G f Gᵀ ⇒ df = Gᵀ dW G. *)
        for i = 0 to 2 do
          for j = 0 to 2 do
            Tensor.set4 dw_total co ci i j (Tensor.get2 dk i j)
          done
        done
      done
    done;
    Var.accumulate x dx_total;
    Var.accumulate w dw_total
  in
  Var.make ~data:out ~parents:[ x; w ] ~backward
