(** Learnable quantization scale parameter (Sec. III-B of the paper).

    The underlying parameter is [θ = log2 t]; the effective scale is
    [s = 2^⌈θ⌉] when [pow2] is set (hardware-friendly) or [2^θ] otherwise.
    Gradients arrive through Eq. (3):
    [∂q/∂θ = s·ln 2 · clamp(⌊x/s⌉ − x/s, qmin, qmax)] and are applied with
    the parameter's private Adam state (β₁ = 0.9, β₂ = 0.99), matching the
    paper's optimizer split (SGD for weights, Adam for scales). *)

type t

val create : ?learnable:bool -> pow2:bool -> init:float -> unit -> t
(** [init] is the initial scale [s] (not its log). *)

val value : t -> float
(** Effective scale used by the forward pass. *)

val set_from_calibration : t -> float -> unit
(** Overwrite [θ] from a calibrated scale; used in static (non-learned)
    mode where the observer drives the scale. *)

val learnable : t -> bool

val accumulate_grad : t -> float -> unit
(** Add a contribution to [∂L/∂θ] — diverted into the current domain's
    sink buffer when one registering this parameter is installed. *)

(** {2 Gradient sinks} — scalar counterpart of {!Var.with_sink}, for
    data-parallel backward passes that share scale parameters. *)

type sink

val sink_create : t list -> sink
val with_sink : sink -> (unit -> 'a) -> 'a

val sink_merge : sink -> unit
(** Add the buffered contributions into the parameters' [g]. *)

val zero_grad : t -> unit
val grad : t -> float

val adam_step : ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> t -> unit
(** One Adam update of [θ] (no-op for non-learnable scales).  A non-finite
    accumulated gradient is discarded instead of applied — NaNs must not
    poison the Adam moment EMAs. *)

(** {2 State capture} — full optimizer state of one scale parameter, for
    bit-exact training checkpoints. *)

type snapshot = {
  snap_theta : float;
  snap_g : float;
  snap_m : float;
  snap_v : float;
  snap_steps : int;
}

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val log2_t : t -> float
