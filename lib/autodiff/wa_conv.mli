(** Fused Winograd-aware, tap-wise quantized convolution layer (training).

    Implements the paper's quantization scheme as a single autodiff node
    with a hand-written backward pass:

    {v
      y = Aᵀ ( Σ_cin  s_B·⌊Bᵀ x B ⊘ s_B⌉ ⊙ s_G·⌊G w Gᵀ ⊘ s_G⌉ ) A
    v}

    - gradients to [x] and [w] use the clipped straight-through estimator
      propagated through the (linear, constant) transform matrices — the
      "static" Winograd-aware training of Fernandez et al. extended with
      tap-wise quantization;
    - gradients to the tap scales use Eq. (3) on [θ = log2 t];
    - in [Static] mode the scales instead follow running-max calibration
      each forward (the "straight-forward" power-of-two rows of Table II).

    Stride is fixed to 1 and kernels to 3×3 — the layers the Winograd
    operator supports. *)

type mode = Static | Learned

type t

val create :
  variant:Twq_winograd.Transform.variant ->
  ?wino_bits:int ->
  ?pow2:bool ->
  ?tapwise:bool ->
  ?mode:mode ->
  pad:int ->
  unit ->
  t

val forward : t -> x:Var.t -> w:Var.t -> Var.t
(** [x] NCHW (already activation-quantized upstream), [w] the (already
    spatially fake-quantized) weights.  Output spatial dims follow a
    stride-1 3×3 convolution with the layer's padding. *)

val scales : t -> Scale_param.t list
(** All scale parameters (for the Adam step); empty in [Static] mode
    filtering is the caller's concern — non-learnable scales no-op. *)

val input_scale_grid : t -> float array array
(** Current effective [S_B] (t×t). *)

val weight_scale_grid : t -> float array array
(** Current effective [S_G]. *)

val set_frozen : t -> bool -> unit
(** Freeze calibration (evaluation mode): static scales stop updating. *)

(** {2 State capture} — everything mutable a training run accumulates in
    the layer: the scale parameters (with their Adam state) and the
    running-max calibration EMAs.  Restoring a snapshot makes resumed
    training bit-identical to an uninterrupted run. *)

type snapshot = {
  snap_sb : Scale_param.snapshot array array;
  snap_sg : Scale_param.snapshot array array;
  snap_initialized : bool;
  snap_b_max : float array array;
  snap_g_max : float array array;
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** @raise Invalid_argument when grid sizes disagree with the layer's
    transform variant. *)
