(* Specialized, allocation-free Winograd kernels.

   Each transform matrix is unrolled into a 1-D "step" applied first to
   the columns of the source tile and then to the rows of the
   intermediate — exactly the two matmuls of the generic sandwich.  The
   float steps keep the reference accumulation order of [Ops.matmul]
   (ascending index, left-associated, zero rows skipped), restricting
   common-subexpression sharing to sign-symmetric products and exact
   power-of-two multiplies, so results match the generic path
   element-for-element (the sign of a zero is the only tolerated
   difference).  The integer steps are exact arithmetic, so shift-add
   decompositions are unconditionally bit-identical to
   [Transform.int_sandwich].

   The conv drivers are tap-major: tiles are scattered into t·t per-tap
   [tiles × cin] panels, one flat GEMM per tap runs against the
   [cin × cout] transformed weights, and outputs gather back through the
   inverse transform.  All staging lives in per-domain scratch arenas —
   the tile loop allocates nothing.

   The per-tap GEMMs run through [Microkernel]: both operands are packed
   into register-block panels (tiles MR-packed during scatter, weights
   NR-packed during the weight transform) and the product is computed by
   MR×NR accumulator-block kernels under KC cache blocking.  The naive
   triple-loop drivers are kept verbatim as [conv2d_f32_ref] /
   [conv2d_i32_exact_ref] oracles; see Microkernel for the ordering
   contract that keeps the fast path equal to them. *)

module P = Twq_util.Parallel
module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Shape = Twq_tensor.Shape

(* A step reads [inner] elements of [src] starting at [soff] with stride
   [sstride] and writes [rows] results at [doff] with stride [dstride]. *)
type 'a step = 'a array -> int -> int -> 'a array -> int -> int -> unit

type 'a kernel = {
  tile : int;
  mout : int;
  input : 'a array -> int -> 'a array -> int -> 'a array -> unit;
  weight : 'a array -> int -> 'a array -> int -> 'a array -> unit;
  output : 'a array -> int -> 'a array -> int -> 'a array -> unit;
}

(* Fused elementwise epilogue, applied inside the producing conv's output
   write loop (the software analogue of the accelerator's FixPipe
   post-processing): optional saturating residual add of an already
   computed activation map (both operands round-shifted onto the common
   output grid), then optional ReLU.  [other] must share the output's
   row-major layout so the flat offset lines up. *)
type epilogue = { relu : bool; add : add_spec option }

and add_spec = {
  other : int array;  (* residual operand, same layout as the output *)
  shift_self : int;   (* right shift aligning the conv's own output *)
  shift_other : int;  (* right shift aligning [other] *)
  bits : int;         (* saturation width of the sum (8 for int8) *)
}

let no_epilogue = { relu = false; add = None }

let[@inline] epilogue_store e dst off v =
  let v =
    match e.add with
    | None -> v
    | Some a ->
        Itensor.clamp_int ~bits:a.bits
          (Itensor.round_shift v a.shift_self
          + Itensor.round_shift a.other.(off) a.shift_other)
  in
  dst.(off) <- (if e.relu && v < 0 then 0 else v)

(* Apply [step] as the sandwich t_m · x · t_mᵀ: stage 1 maps the columns
   of the square [inner×inner] source into [tmp] ([rows×inner]), stage 2
   maps the rows of [tmp] into the [rows×rows] destination.  Identical
   pairing and ordering to the two matmuls of the generic path. *)
let sandwich ~rows ~inner (step : 'a step) src soff dst doff tmp =
  for j = 0 to inner - 1 do
    step src (soff + j) inner tmp j inner
  done;
  for i = 0 to rows - 1 do
    step tmp (i * inner) 1 dst (doff + (i * rows)) 1
  done

(* ---------- float steps ---------- *)
(* Non-dyadic constants below are written exactly as [Rat.to_float]
   produces them (num /. den); dyadic ones are exact literals. *)

let c1_6 = 1.0 /. 6.0
let c1_12 = 1.0 /. 12.0
let c1_24 = 1.0 /. 24.0
let c2_9 = 2.0 /. 9.0
let c1_90 = 1.0 /. 90.0
let c1_45 = 1.0 /. 45.0
let c2_45 = 2.0 /. 45.0
let c32_45 = 32.0 /. 45.0
let c16_45 = 16.0 /. 45.0
let c8_45 = 8.0 /. 45.0

(* F(2x2,3x3): Bᵀ = [[1,0,-1,0];[0,1,1,0];[0,-1,1,0];[0,1,0,-1]] *)
let bt2_f : float step =
 fun s o st d q dt ->
  let x0 = s.(o)
  and x1 = s.(o + st)
  and x2 = s.(o + (2 * st))
  and x3 = s.(o + (3 * st)) in
  d.(q) <- x0 -. x2;
  d.(q + dt) <- x1 +. x2;
  d.(q + (2 * dt)) <- x2 -. x1;
  d.(q + (3 * dt)) <- x1 -. x3

(* G = [[1,0,0];[1/2,1/2,1/2];[1/2,-1/2,1/2];[0,0,1]] *)
let g2_f : float step =
 fun s o st d q dt ->
  let f0 = s.(o) and f1 = s.(o + st) and f2 = s.(o + (2 * st)) in
  let h0 = 0.5 *. f0 and h1 = 0.5 *. f1 and h2 = 0.5 *. f2 in
  d.(q) <- f0;
  d.(q + dt) <- h0 +. h1 +. h2;
  d.(q + (2 * dt)) <- h0 -. h1 +. h2;
  d.(q + (3 * dt)) <- f2

(* Aᵀ = [[1,1,1,0];[0,1,-1,-1]] *)
let at2_f : float step =
 fun s o st d q dt ->
  let y0 = s.(o)
  and y1 = s.(o + st)
  and y2 = s.(o + (2 * st))
  and y3 = s.(o + (3 * st)) in
  d.(q) <- y0 +. y1 +. y2;
  d.(q + dt) <- y1 -. y2 -. y3

(* F(4x4,3x3): Bᵀ rows [4,0,-5,0,1,0]; [0,∓4,-4,±1,1,0]; [0,∓2,-1,±2,1,0];
   [0,4,0,-5,0,1] *)
let bt4_f : float step =
 fun s o st d q dt ->
  let x0 = s.(o)
  and x1 = s.(o + st)
  and x2 = s.(o + (2 * st))
  and x3 = s.(o + (3 * st))
  and x4 = s.(o + (4 * st))
  and x5 = s.(o + (5 * st)) in
  let p1 = 4.0 *. x1 and p2 = 4.0 *. x2 in
  let q1 = 2.0 *. x1 and q3 = 2.0 *. x3 in
  d.(q) <- (4.0 *. x0) -. (5.0 *. x2) +. x4;
  d.(q + dt) <- -.p1 -. p2 +. x3 +. x4;
  d.(q + (2 * dt)) <- p1 -. p2 -. x3 +. x4;
  d.(q + (3 * dt)) <- -.q1 -. x2 +. q3 +. x4;
  d.(q + (4 * dt)) <- q1 -. x2 -. q3 +. x4;
  d.(q + (5 * dt)) <- p1 -. (5.0 *. x3) +. x5

(* G rows [1/4,0,0]; [∓1/6,∓(±)1/6,∓1/6]; [1/24,±1/12,1/6]; [0,0,1] *)
let g4_f : float step =
 fun s o st d q dt ->
  let f0 = s.(o) and f1 = s.(o + st) and f2 = s.(o + (2 * st)) in
  let a = c1_6 *. f0 and b = c1_6 *. f1 and c = c1_6 *. f2 in
  let u = c1_24 *. f0 and v = c1_12 *. f1 in
  d.(q) <- 0.25 *. f0;
  d.(q + dt) <- -.a -. b -. c;
  d.(q + (2 * dt)) <- -.a +. b -. c;
  d.(q + (3 * dt)) <- u +. v +. c;
  d.(q + (4 * dt)) <- u -. v +. c;
  d.(q + (5 * dt)) <- f2

(* Aᵀ rows [1,1,1,1,1,0]; [0,1,-1,2,-2,0]; [0,1,1,4,4,0]; [0,1,-1,8,-8,1] *)
let at4_f : float step =
 fun s o st d q dt ->
  let y0 = s.(o)
  and y1 = s.(o + st)
  and y2 = s.(o + (2 * st))
  and y3 = s.(o + (3 * st))
  and y4 = s.(o + (4 * st))
  and y5 = s.(o + (5 * st)) in
  let q3 = 2.0 *. y3 and q4 = 2.0 *. y4 in
  let f3 = 4.0 *. y3 and f4 = 4.0 *. y4 in
  let e3 = 8.0 *. y3 and e4 = 8.0 *. y4 in
  d.(q) <- y0 +. y1 +. y2 +. y3 +. y4;
  d.(q + dt) <- y1 -. y2 +. q3 -. q4;
  d.(q + (2 * dt)) <- y1 +. y2 +. f3 +. f4;
  d.(q + (3 * dt)) <- y1 -. y2 +. e3 -. e4 +. y5

(* F(6x6,3x3), Lavin points {0,±1,±2,±1/2}. *)
let bt6_f : float step =
 fun s o st d q dt ->
  let x0 = s.(o)
  and x1 = s.(o + st)
  and x2 = s.(o + (2 * st))
  and x3 = s.(o + (3 * st))
  and x4 = s.(o + (4 * st))
  and x5 = s.(o + (5 * st))
  and x6 = s.(o + (6 * st))
  and x7 = s.(o + (7 * st)) in
  let p2 = 5.25 *. x2 and p4 = 5.25 *. x4 in
  let q3 = 4.25 *. x3 and q4 = 4.25 *. x4 in
  let a1 = 0.5 *. x1
  and a2 = 0.25 *. x2
  and a3 = 2.5 *. x3
  and a4 = 1.25 *. x4
  and a5 = 2.0 *. x5 in
  let b1 = 2.0 *. x1
  and b2 = 4.0 *. x2
  and b4 = 5.0 *. x4
  and b5 = 0.5 *. x5 in
  let s3 = 5.25 *. x3 and s5 = 5.25 *. x5 in
  d.(q) <- x0 -. p2 +. p4 -. x6;
  d.(q + dt) <- x1 +. x2 -. q3 -. q4 +. x5 +. x6;
  d.(q + (2 * dt)) <- -.x1 +. x2 +. q3 -. q4 -. x5 +. x6;
  d.(q + (3 * dt)) <- a1 +. a2 -. a3 -. a4 +. a5 +. x6;
  d.(q + (4 * dt)) <- -.a1 +. a2 +. a3 -. a4 -. a5 +. x6;
  d.(q + (5 * dt)) <- b1 +. b2 -. a3 -. b4 +. b5 +. x6;
  d.(q + (6 * dt)) <- -.b1 +. b2 +. a3 -. b4 -. b5 +. x6;
  d.(q + (7 * dt)) <- -.x1 +. s3 -. s5 +. x7

let g6_f : float step =
 fun s o st d q dt ->
  let f0 = s.(o) and f1 = s.(o + st) and f2 = s.(o + (2 * st)) in
  let u0 = c2_9 *. f0 and u1 = c2_9 *. f1 and u2 = c2_9 *. f2 in
  let v0 = c1_90 *. f0 and v1 = c1_45 *. f1 and v2 = c2_45 *. f2 in
  let g1 = c32_45 *. f0 and g2 = c16_45 *. f1 and g3 = c8_45 *. f2 in
  d.(q) <- f0;
  d.(q + dt) <- -.u0 -. u1 -. u2;
  d.(q + (2 * dt)) <- -.u0 +. u1 -. u2;
  d.(q + (3 * dt)) <- v0 +. v1 +. v2;
  d.(q + (4 * dt)) <- v0 -. v1 +. v2;
  d.(q + (5 * dt)) <- g1 +. g2 +. g3;
  d.(q + (6 * dt)) <- g1 -. g2 +. g3;
  d.(q + (7 * dt)) <- f2

let at6_f : float step =
 fun s o st d q dt ->
  let y0 = s.(o)
  and y1 = s.(o + st)
  and y2 = s.(o + (2 * st))
  and y3 = s.(o + (3 * st))
  and y4 = s.(o + (4 * st))
  and y5 = s.(o + (5 * st))
  and y6 = s.(o + (6 * st))
  and y7 = s.(o + (7 * st)) in
  d.(q) <- y0 +. y1 +. y2 +. y3 +. y4 +. y5 +. y6;
  d.(q + dt) <-
    y1 -. y2 +. (2.0 *. y3) -. (2.0 *. y4) +. (0.5 *. y5) -. (0.5 *. y6);
  d.(q + (2 * dt)) <-
    y1 +. y2 +. (4.0 *. y3) +. (4.0 *. y4) +. (0.25 *. y5) +. (0.25 *. y6);
  d.(q + (3 * dt)) <-
    y1 -. y2 +. (8.0 *. y3) -. (8.0 *. y4) +. (0.125 *. y5) -. (0.125 *. y6);
  d.(q + (4 * dt)) <-
    y1 +. y2
    +. (16.0 *. y3)
    +. (16.0 *. y4)
    +. (0.0625 *. y5)
    +. (0.0625 *. y6);
  d.(q + (5 * dt)) <-
    y1 -. y2
    +. (32.0 *. y3)
    -. (32.0 *. y4)
    +. (0.03125 *. y5)
    -. (0.03125 *. y6)
    +. y7

(* ---------- integer steps (scaled integral matrices, shift-add) ---------- *)

(* F2: Bᵀ and Aᵀ already integral (scale 1); G scaled by 2:
   [[2,0,0];[1,1,1];[1,-1,1];[0,0,2]]. *)
let bt2_i : int step =
 fun s o st d q dt ->
  let x0 = s.(o)
  and x1 = s.(o + st)
  and x2 = s.(o + (2 * st))
  and x3 = s.(o + (3 * st)) in
  d.(q) <- x0 - x2;
  d.(q + dt) <- x1 + x2;
  d.(q + (2 * dt)) <- x2 - x1;
  d.(q + (3 * dt)) <- x1 - x3

let g2_i : int step =
 fun s o st d q dt ->
  let f0 = s.(o) and f1 = s.(o + st) and f2 = s.(o + (2 * st)) in
  d.(q) <- f0 lsl 1;
  d.(q + dt) <- f0 + f1 + f2;
  d.(q + (2 * dt)) <- f0 - f1 + f2;
  d.(q + (3 * dt)) <- f2 lsl 1

let at2_i : int step =
 fun s o st d q dt ->
  let y0 = s.(o)
  and y1 = s.(o + st)
  and y2 = s.(o + (2 * st))
  and y3 = s.(o + (3 * st)) in
  d.(q) <- y0 + y1 + y2;
  d.(q + dt) <- y1 - y2 - y3

(* F4: Bᵀ/Aᵀ integral; G scaled by 24:
   [[6,0,0];[-4,-4,-4];[-4,4,-4];[1,2,4];[1,-2,4];[0,0,24]]. *)
let bt4_i : int step =
 fun s o st d q dt ->
  let x0 = s.(o)
  and x1 = s.(o + st)
  and x2 = s.(o + (2 * st))
  and x3 = s.(o + (3 * st))
  and x4 = s.(o + (4 * st))
  and x5 = s.(o + (5 * st)) in
  d.(q) <- (x0 lsl 2) - (x2 lsl 2) - x2 + x4;
  d.(q + dt) <- x3 + x4 - ((x1 + x2) lsl 2);
  d.(q + (2 * dt)) <- ((x1 - x2) lsl 2) - x3 + x4;
  d.(q + (3 * dt)) <- ((x3 - x1) lsl 1) - x2 + x4;
  d.(q + (4 * dt)) <- ((x1 - x3) lsl 1) - x2 + x4;
  d.(q + (5 * dt)) <- (x1 lsl 2) - (x3 lsl 2) - x3 + x5

let g4_i : int step =
 fun s o st d q dt ->
  let f0 = s.(o) and f1 = s.(o + st) and f2 = s.(o + (2 * st)) in
  let sum = f0 + f1 + f2 and dif = f0 - f1 + f2 in
  d.(q) <- (f0 lsl 2) + (f0 lsl 1);
  d.(q + dt) <- -(sum lsl 2);
  d.(q + (2 * dt)) <- -(dif lsl 2);
  d.(q + (3 * dt)) <- f0 + (f1 lsl 1) + (f2 lsl 2);
  d.(q + (4 * dt)) <- f0 - (f1 lsl 1) + (f2 lsl 2);
  d.(q + (5 * dt)) <- (f2 lsl 4) + (f2 lsl 3)

let at4_i : int step =
 fun s o st d q dt ->
  let y0 = s.(o)
  and y1 = s.(o + st)
  and y2 = s.(o + (2 * st))
  and y3 = s.(o + (3 * st))
  and y4 = s.(o + (4 * st))
  and y5 = s.(o + (5 * st)) in
  let dd = y1 - y2 and ss = y1 + y2 in
  let e = y3 - y4 and f = y3 + y4 in
  d.(q) <- y0 + ss + f;
  d.(q + dt) <- dd + (e lsl 1);
  d.(q + (2 * dt)) <- ss + (f lsl 2);
  d.(q + (3 * dt)) <- dd + (e lsl 3) + y5

(* F6: Bᵀ scaled by 4, G by 90, Aᵀ by 32.  21z = 16z+4z+z, 17z = 16z+z,
   10z = 8z+2z, 5z = 4z+z, 20z = 16z+4z, 90z = 64z+16z+8z+2z. *)
let bt6_i : int step =
 fun s o st d q dt ->
  let x0 = s.(o)
  and x1 = s.(o + st)
  and x2 = s.(o + (2 * st))
  and x3 = s.(o + (3 * st))
  and x4 = s.(o + (4 * st))
  and x5 = s.(o + (5 * st))
  and x6 = s.(o + (6 * st))
  and x7 = s.(o + (7 * st)) in
  let t42 = x4 - x2 and t34 = x3 + x4 and d34 = x3 - x4 in
  let s1256 = x1 + x2 + x5 + x6 in
  d.(q) <- ((x0 - x6) lsl 2) + (t42 lsl 4) + (t42 lsl 2) + t42;
  d.(q + dt) <- (s1256 lsl 2) - (t34 lsl 4) - t34;
  d.(q + (2 * dt)) <- ((x2 + x6 - x1 - x5) lsl 2) + (d34 lsl 4) + d34;
  d.(q + (3 * dt)) <-
    (x1 lsl 1) + x2 - (x3 lsl 3) - (x3 lsl 1) - (x4 lsl 2) - x4 + (x5 lsl 3)
    + (x6 lsl 2);
  d.(q + (4 * dt)) <-
    x2 - (x1 lsl 1) + (x3 lsl 3) + (x3 lsl 1) - (x4 lsl 2) - x4 - (x5 lsl 3)
    + (x6 lsl 2);
  d.(q + (5 * dt)) <-
    (x1 lsl 3) + (x2 lsl 4) - (x3 lsl 3) - (x3 lsl 1) - (x4 lsl 4)
    - (x4 lsl 2) + (x5 lsl 1) + (x6 lsl 2);
  d.(q + (6 * dt)) <-
    (x2 lsl 4) - (x1 lsl 3) + (x3 lsl 3) + (x3 lsl 1) - (x4 lsl 4)
    - (x4 lsl 2) - (x5 lsl 1) + (x6 lsl 2);
  d.(q + (7 * dt)) <-
    ((x7 - x1) lsl 2) + ((x3 - x5) lsl 4) + ((x3 - x5) lsl 2) + (x3 - x5)

let g6_i : int step =
 fun s o st d q dt ->
  let f0 = s.(o) and f1 = s.(o + st) and f2 = s.(o + (2 * st)) in
  let sum = f0 + f1 + f2 and dif = f0 - f1 + f2 in
  d.(q) <- (f0 lsl 6) + (f0 lsl 4) + (f0 lsl 3) + (f0 lsl 1);
  d.(q + dt) <- -((sum lsl 4) + (sum lsl 2));
  d.(q + (2 * dt)) <- -((dif lsl 4) + (dif lsl 2));
  d.(q + (3 * dt)) <- f0 + (f1 lsl 1) + (f2 lsl 2);
  d.(q + (4 * dt)) <- f0 - (f1 lsl 1) + (f2 lsl 2);
  d.(q + (5 * dt)) <- (f0 lsl 6) + (f1 lsl 5) + (f2 lsl 4);
  d.(q + (6 * dt)) <- (f0 lsl 6) - (f1 lsl 5) + (f2 lsl 4);
  d.(q + (7 * dt)) <- (f2 lsl 6) + (f2 lsl 4) + (f2 lsl 3) + (f2 lsl 1)

let at6_i : int step =
 fun s o st d q dt ->
  let y0 = s.(o)
  and y1 = s.(o + st)
  and y2 = s.(o + (2 * st))
  and y3 = s.(o + (3 * st))
  and y4 = s.(o + (4 * st))
  and y5 = s.(o + (5 * st))
  and y6 = s.(o + (6 * st))
  and y7 = s.(o + (7 * st)) in
  let dd = y1 - y2 and ss = y1 + y2 in
  let e = y3 - y4 and f = y3 + y4 in
  let g = y5 - y6 and h = y5 + y6 in
  d.(q) <- (y0 + ss + f + h) lsl 5;
  d.(q + dt) <- (dd lsl 5) + (e lsl 6) + (g lsl 4);
  d.(q + (2 * dt)) <- (ss lsl 5) + (f lsl 7) + (h lsl 3);
  d.(q + (3 * dt)) <- (dd lsl 5) + (e lsl 8) + (g lsl 2);
  d.(q + (4 * dt)) <- (ss lsl 5) + (f lsl 9) + (h lsl 1);
  d.(q + (5 * dt)) <- (dd lsl 5) + (e lsl 10) + g + (y7 lsl 5)

(* ---------- kernel records ---------- *)

let make ~t ~m ~r ~bt ~g ~at =
  {
    tile = t;
    mout = m;
    input = sandwich ~rows:t ~inner:t bt;
    weight = sandwich ~rows:t ~inner:r g;
    output = sandwich ~rows:m ~inner:t at;
  }

let f2_f32 = make ~t:4 ~m:2 ~r:3 ~bt:bt2_f ~g:g2_f ~at:at2_f
let f4_f32 = make ~t:6 ~m:4 ~r:3 ~bt:bt4_f ~g:g4_f ~at:at4_f
let f6_f32 = make ~t:8 ~m:6 ~r:3 ~bt:bt6_f ~g:g6_f ~at:at6_f

let f32_specialized = function
  | Transform.F2 -> f2_f32
  | Transform.F4 -> f4_f32
  | Transform.F6 -> f6_f32

let f2_i32 = make ~t:4 ~m:2 ~r:3 ~bt:bt2_i ~g:g2_i ~at:at2_i
let f4_i32 = make ~t:6 ~m:4 ~r:3 ~bt:bt4_i ~g:g4_i ~at:at4_i
let f6_i32 = make ~t:8 ~m:6 ~r:3 ~bt:bt6_i ~g:g6_i ~at:at6_i

let i32_specialized = function
  | Transform.F2 -> f2_i32
  | Transform.F4 -> f4_i32
  | Transform.F6 -> f6_i32

(* Compile an arbitrary constant matrix into a sparse per-row plan.  The
   accumulation is exactly [Ops.matmul] with that matrix on the left:
   start from 0.0, add coefficient·element for the non-zero coefficients
   in ascending column order. *)
let plan_step (mat : float array array) : float step =
  let rows = Array.length mat in
  let idx =
    Array.map
      (fun row ->
        let l = ref [] in
        Array.iteri (fun k c -> if c <> 0.0 then l := k :: !l) row;
        Array.of_list (List.rev !l))
      mat
  in
  let coef =
    Array.map2
      (fun row ix -> Array.map (fun k -> row.(k)) ix)
      mat idx
  in
  fun s o st d q dt ->
    for i = 0 to rows - 1 do
      let ix = idx.(i) and cf = coef.(i) in
      let acc = ref 0.0 in
      for k = 0 to Array.length ix - 1 do
        acc := !acc +. (cf.(k) *. s.(o + (ix.(k) * st)))
      done;
      d.(q + (i * dt)) <- !acc
    done

let f32_of_mats ~bt ~g ~at =
  let t = Array.length bt and m = Array.length at in
  let r = Array.length g.(0) in
  make ~t ~m ~r ~bt:(plan_step bt) ~g:(plan_step g) ~at:(plan_step at)

(* Integer analogue of [plan_step]: exact arithmetic, so the sparse plan
   is unconditionally bit-identical to the dense sandwich. *)
let plan_step_i (mat : int array array) : int step =
  let rows = Array.length mat in
  let idx =
    Array.map
      (fun row ->
        let l = ref [] in
        Array.iteri (fun k c -> if c <> 0 then l := k :: !l) row;
        Array.of_list (List.rev !l))
      mat
  in
  let coef =
    Array.map2 (fun row ix -> Array.map (fun k -> row.(k)) ix) mat idx
  in
  fun s o st d q dt ->
    for i = 0 to rows - 1 do
      let ix = idx.(i) and cf = coef.(i) in
      let acc = ref 0 in
      for k = 0 to Array.length ix - 1 do
        acc := !acc + (cf.(k) * s.(o + (ix.(k) * st)))
      done;
      d.(q + (i * dt)) <- !acc
    done

let i32_of_mats ~bt ~g ~at =
  let t = Array.length bt and m = Array.length at in
  let r = Array.length g.(0) in
  make ~t ~m ~r ~bt:(plan_step_i bt) ~g:(plan_step_i g) ~at:(plan_step_i at)

(* ---------- tap-major convolution drivers ---------- *)

let load_tile_f (xd : float array) ~h ~w ~base ~pad ~h0 ~w0 ~t dst =
  for dy = 0 to t - 1 do
    let hi = h0 + dy - pad in
    let drow = dy * t in
    if hi < 0 || hi >= h then Array.fill dst drow t 0.0
    else begin
      let xrow = base + (hi * w) in
      for dx = 0 to t - 1 do
        let wi = w0 + dx - pad in
        dst.(drow + dx) <- (if wi < 0 || wi >= w then 0.0 else xd.(xrow + wi))
      done
    end
  done

let load_tile_i (xd : int array) ~h ~w ~base ~pad ~h0 ~w0 ~t dst =
  for dy = 0 to t - 1 do
    let hi = h0 + dy - pad in
    let drow = dy * t in
    if hi < 0 || hi >= h then Array.fill dst drow t 0
    else begin
      let xrow = base + (hi * w) in
      for dx = 0 to t - 1 do
        let wi = w0 + dx - pad in
        dst.(drow + dx) <- (if wi < 0 || wi >= w then 0 else xd.(xrow + wi))
      done
    end
  done

(* One arena per logically distinct buffer (borrows from the same arena
   alias on a domain). *)
let fa_tile = P.Scratch.create_float ()
let fa_xt = P.Scratch.create_float ()
let fa_tmp = P.Scratch.create_float ()
let fa_v = P.Scratch.create_float ()
let fa_mo = P.Scratch.create_float ()
let fa_yw = P.Scratch.create_float ()
let fa_yo = P.Scratch.create_float ()
let fa_u = P.Scratch.create_float ()
let ia_tile = P.Scratch.create_int ()
let ia_xt = P.Scratch.create_int ()
let ia_tmp = P.Scratch.create_int ()
let ia_v = P.Scratch.create_int ()
let ia_mo = P.Scratch.create_int ()
let ia_yw = P.Scratch.create_int ()
let ia_yo = P.Scratch.create_int ()
let ia_u = P.Scratch.create_int ()

(* Tiles per block: big enough that the per-tap GEMM runs over a panel,
   small enough to keep all domains busy.  Per-tile results do not depend
   on the grouping, so any block size is bit-identical. *)
let block_of ~total =
  let nd = P.num_domains () in
  max 1 (min 32 (total / (max 1 (4 * nd))))

(* Naive triple-loop driver, kept verbatim as the oracle for the
   microkernel path below. *)
let conv2d_f32_ref k ~pad ~x ~w =
  let n = Tensor.dim x 0 and cin = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and wd = Tensor.dim x 3 in
  let cout = Tensor.dim w 0 in
  let t = k.tile and m = k.mout in
  let r = t - m + 1 in
  if Tensor.dim w 1 <> cin then
    invalid_arg "Kernels.conv2d_f32: channel mismatch";
  if Tensor.dim w 2 <> r || Tensor.dim w 3 <> r then
    invalid_arg "Kernels.conv2d_f32: kernel size mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:r ~kw:r ~stride:1 ~pad in
  let tt = t * t in
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  let od = out.Tensor.data and xd = x.Tensor.data in
  (* Transformed weights, tap-major: u[((tap·cin)+ci)·cout + co]. *)
  let u = Array.make (tt * cin * cout) 0.0 in
  P.parallel_for ~lo:0 ~hi:(cout * cin) (fun idx ->
      let co = idx / cin and ci = idx mod cin in
      let f = P.Scratch.borrow fa_tile (r * r) in
      let wt = P.Scratch.borrow fa_xt tt in
      let tmp = P.Scratch.borrow fa_tmp (t * r) in
      Array.blit w.Tensor.data (((co * cin) + ci) * r * r) f 0 (r * r);
      k.weight f 0 wt 0 tmp;
      for tap = 0 to tt - 1 do
        u.((((tap * cin) + ci) * cout) + co) <- wt.(tap)
      done);
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  let tiles_per_img = n_th * n_tw in
  let total = n * tiles_per_img in
  let tb = block_of ~total in
  let nblocks = (total + tb - 1) / tb in
  P.parallel_for ~chunk:1 ~lo:0 ~hi:nblocks (fun blk ->
      let b0 = blk * tb in
      let bs = min tb (total - b0) in
      let tile = P.Scratch.borrow fa_tile tt in
      let xt = P.Scratch.borrow fa_xt tt in
      let tmp = P.Scratch.borrow fa_tmp tt in
      let v = P.Scratch.borrow fa_v (tt * tb * cin) in
      let mo = P.Scratch.borrow fa_mo (tt * tb * cout) in
      let yw = P.Scratch.borrow fa_yw tt in
      let yo = P.Scratch.borrow fa_yo (m * m) in
      (* Scatter: transform each tile and spread its taps across the
         per-tap [tiles × cin] panels. *)
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        for ci = 0 to cin - 1 do
          load_tile_f xd ~h ~w:wd
            ~base:(((ni * cin) + ci) * h * wd)
            ~pad ~h0:(th * m) ~w0:(tw * m) ~t tile;
          k.input tile 0 xt 0 tmp;
          for tap = 0 to tt - 1 do
            v.((((tap * tb) + bidx) * cin) + ci) <- xt.(tap)
          done
        done
      done;
      (* One flat GEMM per tap: [bs × cin] · [cin × cout].  Accumulation
         per (tile, tap, co) is ascending ci, matching the reference
         per-element loop; skipping a zero input tap adds nothing. *)
      Array.fill mo 0 (tt * tb * cout) 0.0;
      for tap = 0 to tt - 1 do
        let vbase = tap * tb * cin
        and ubase = tap * cin * cout
        and obase = tap * tb * cout in
        for bidx = 0 to bs - 1 do
          let vrow = vbase + (bidx * cin) and orow = obase + (bidx * cout) in
          for ci = 0 to cin - 1 do
            let av = v.(vrow + ci) in
            if av <> 0.0 then begin
              let urow = ubase + (ci * cout) in
              for co = 0 to cout - 1 do
                mo.(orow + co) <- mo.(orow + co) +. (av *. u.(urow + co))
              done
            end
          done
        done
      done;
      (* Gather: inverse-transform each (tile, co) tap vector, crop. *)
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let h0 = th * m and w0 = tw * m in
        let rh = min m (ho - h0) and rw = min m (wo - w0) in
        for co = 0 to cout - 1 do
          for tap = 0 to tt - 1 do
            yw.(tap) <- mo.((((tap * tb) + bidx) * cout) + co)
          done;
          k.output yw 0 yo 0 tmp;
          for dy = 0 to rh - 1 do
            let orow = (((((ni * cout) + co) * ho) + h0 + dy) * wo) + w0 in
            let yrow = dy * m in
            for dx = 0 to rw - 1 do
              od.(orow + dx) <- yo.(yrow + dx)
            done
          done
        done
      done);
  out

let conv2d_i32_exact_ref ?(epilogue = no_epilogue) ?out k ~scale2 ~pad ~x ~w =
  let n = Itensor.dim x 0 and cin = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and wd = Itensor.dim x 3 in
  let cout = Itensor.dim w 0 in
  let t = k.tile and m = k.mout in
  let r = t - m + 1 in
  if Itensor.dim w 1 <> cin then
    invalid_arg "Kernels.conv2d_i32_exact: channel mismatch";
  if Itensor.dim w 2 <> r || Itensor.dim w 3 <> r then
    invalid_arg "Kernels.conv2d_i32_exact: kernel size mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:r ~kw:r ~stride:1 ~pad in
  let tt = t * t in
  let out =
    match out with
    | None -> Itensor.zeros [| n; cout; ho; wo |]
    | Some o ->
        if
          Itensor.dim o 0 <> n || Itensor.dim o 1 <> cout
          || Itensor.dim o 2 <> ho || Itensor.dim o 3 <> wo
        then invalid_arg "Kernels.conv2d_i32_exact: out shape mismatch";
        o
  in
  let od = out.Itensor.data and xd = x.Itensor.data in
  let u = Array.make (tt * cin * cout) 0 in
  P.parallel_for ~lo:0 ~hi:(cout * cin) (fun idx ->
      let co = idx / cin and ci = idx mod cin in
      let f = P.Scratch.borrow ia_tile (r * r) in
      let wt = P.Scratch.borrow ia_xt tt in
      let tmp = P.Scratch.borrow ia_tmp (t * r) in
      Array.blit w.Itensor.data (((co * cin) + ci) * r * r) f 0 (r * r);
      k.weight f 0 wt 0 tmp;
      for tap = 0 to tt - 1 do
        u.((((tap * cin) + ci) * cout) + co) <- wt.(tap)
      done);
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  let tiles_per_img = n_th * n_tw in
  let total = n * tiles_per_img in
  let tb = block_of ~total in
  let nblocks = (total + tb - 1) / tb in
  P.parallel_for ~chunk:1 ~lo:0 ~hi:nblocks (fun blk ->
      let b0 = blk * tb in
      let bs = min tb (total - b0) in
      let tile = P.Scratch.borrow ia_tile tt in
      let xt = P.Scratch.borrow ia_xt tt in
      let tmp = P.Scratch.borrow ia_tmp tt in
      let v = P.Scratch.borrow ia_v (tt * tb * cin) in
      let mo = P.Scratch.borrow ia_mo (tt * tb * cout) in
      let yw = P.Scratch.borrow ia_yw tt in
      let yo = P.Scratch.borrow ia_yo (m * m) in
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        for ci = 0 to cin - 1 do
          load_tile_i xd ~h ~w:wd
            ~base:(((ni * cin) + ci) * h * wd)
            ~pad ~h0:(th * m) ~w0:(tw * m) ~t tile;
          k.input tile 0 xt 0 tmp;
          for tap = 0 to tt - 1 do
            v.((((tap * tb) + bidx) * cin) + ci) <- xt.(tap)
          done
        done
      done;
      Array.fill mo 0 (tt * tb * cout) 0;
      for tap = 0 to tt - 1 do
        let vbase = tap * tb * cin
        and ubase = tap * cin * cout
        and obase = tap * tb * cout in
        for bidx = 0 to bs - 1 do
          let vrow = vbase + (bidx * cin) and orow = obase + (bidx * cout) in
          for ci = 0 to cin - 1 do
            let av = v.(vrow + ci) in
            if av <> 0 then begin
              let urow = ubase + (ci * cout) in
              for co = 0 to cout - 1 do
                mo.(orow + co) <- mo.(orow + co) + (av * u.(urow + co))
              done
            end
          done
        done
      done;
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let h0 = th * m and w0 = tw * m in
        let rh = min m (ho - h0) and rw = min m (wo - w0) in
        for co = 0 to cout - 1 do
          for tap = 0 to tt - 1 do
            yw.(tap) <- mo.((((tap * tb) + bidx) * cout) + co)
          done;
          k.output yw 0 yo 0 tmp;
          for dy = 0 to rh - 1 do
            let orow = (((((ni * cout) + co) * ho) + h0 + dy) * wo) + w0 in
            let yrow = dy * m in
            for dx = 0 to rw - 1 do
              let raw = yo.(yrow + dx) in
              (* The Winograd identity guarantees exact divisibility by
                 the squared transform scale; assert rather than
                 truncate. *)
              assert (raw mod scale2 = 0);
              epilogue_store epilogue od (orow + dx) (raw / scale2)
            done
          done
        done
      done);
  out

(* ---------- microkernel (packed, register-tiled) drivers ---------- *)

(* The fast drivers keep the exact structure of the [_ref] bodies but
   stage both GEMM operands in register-block panels:

   - weights are NR-packed while they are transformed —
     [u.(tap·cin·cout_p + ((jb·cin + ci)·nr + jr))] with [co = jb·nr+jr],
     [cout_p = round_up cout nr], pad lanes zeroed once per call;
   - tiles are MR-packed during scatter —
     [v.(tap·tb·cin + ((ib·cin + ci)·mr + ir))] with [bidx = ib·mr+ir],
     [tb] rounded up to a multiple of MR, pad rows of a trailing partial
     block zeroed;
   - per tap, one [Microkernel.gemm_*] call accumulates into the
     [tb × cout_p] slab of [mo]; gather reads [cout_p]-strided rows and
     never touches the pad columns.

   [u] itself is borrowed from a per-domain arena instead of allocated
   per call — the last steady-state allocation of the tap-major path.
   The configuration is read once per call, so packing and consumption
   cannot desync even if a test changes it concurrently. *)

let conv2d_f32 k ~pad ~x ~w =
  let n = Tensor.dim x 0 and cin = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and wd = Tensor.dim x 3 in
  let cout = Tensor.dim w 0 in
  let t = k.tile and m = k.mout in
  let r = t - m + 1 in
  if Tensor.dim w 1 <> cin then
    invalid_arg "Kernels.conv2d_f32: channel mismatch";
  if Tensor.dim w 2 <> r || Tensor.dim w 3 <> r then
    invalid_arg "Kernels.conv2d_f32: kernel size mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:r ~kw:r ~stride:1 ~pad in
  let tt = t * t in
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  let od = out.Tensor.data and xd = x.Tensor.data in
  let { Microkernel.mr; nr; kc } = Microkernel.config () in
  let cout_p = Microkernel.round_up cout nr in
  let ucincp = cin * cout_p in
  (* Transformed weights, NR-packed; borrowed by the caller so all
     weight-transform workers write into the same panel. *)
  let u = P.Scratch.borrow fa_u (tt * ucincp) in
  P.parallel_for ~lo:0 ~hi:(cout * cin) (fun idx ->
      let co = idx / cin and ci = idx mod cin in
      let f = P.Scratch.borrow fa_tile (r * r) in
      let wt = P.Scratch.borrow fa_xt tt in
      let tmp = P.Scratch.borrow fa_tmp (t * r) in
      Array.blit w.Tensor.data (((co * cin) + ci) * r * r) f 0 (r * r);
      k.weight f 0 wt 0 tmp;
      let jb = co / nr and jr = co mod nr in
      let base = (((jb * cin) + ci) * nr) + jr in
      for tap = 0 to tt - 1 do
        u.((tap * ucincp) + base) <- wt.(tap)
      done);
  if cout_p > cout then
    for co = cout to cout_p - 1 do
      let jb = co / nr and jr = co mod nr in
      for ci = 0 to cin - 1 do
        let base = (((jb * cin) + ci) * nr) + jr in
        for tap = 0 to tt - 1 do
          u.((tap * ucincp) + base) <- 0.0
        done
      done
    done;
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  let tiles_per_img = n_th * n_tw in
  let total = n * tiles_per_img in
  let tb = Microkernel.round_up (block_of ~total) mr in
  let tbcin = tb * cin in
  let nblocks = (total + tb - 1) / tb in
  P.parallel_for ~chunk:1 ~lo:0 ~hi:nblocks (fun blk ->
      let b0 = blk * tb in
      let bs = min tb (total - b0) in
      let bs_p = Microkernel.round_up bs mr in
      let tile = P.Scratch.borrow fa_tile tt in
      let xt = P.Scratch.borrow fa_xt tt in
      let tmp = P.Scratch.borrow fa_tmp tt in
      let v = P.Scratch.borrow fa_v (tt * tbcin) in
      let mo = P.Scratch.borrow fa_mo (tt * tb * cout_p) in
      let yw = P.Scratch.borrow fa_yw tt in
      let yo = P.Scratch.borrow fa_yo (m * m) in
      (* Scatter: transform each tile and spread its taps across the
         per-tap MR-packed panels. *)
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          load_tile_f xd ~h ~w:wd
            ~base:(((ni * cin) + ci) * h * wd)
            ~pad ~h0:(th * m) ~w0:(tw * m) ~t tile;
          k.input tile 0 xt 0 tmp;
          let vbase = (((ib * cin) + ci) * mr) + ir in
          for tap = 0 to tt - 1 do
            v.((tap * tbcin) + vbase) <- xt.(tap)
          done
        done
      done;
      (* Zero the pad rows of a trailing partial block so their products
         contribute exact zeros. *)
      for bidx = bs to bs_p - 1 do
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          let vbase = (((ib * cin) + ci) * mr) + ir in
          for tap = 0 to tt - 1 do
            v.((tap * tbcin) + vbase) <- 0.0
          done
        done
      done;
      Array.fill mo 0 (tt * tb * cout_p) 0.0;
      for tap = 0 to tt - 1 do
        Microkernel.gemm_f32 ~mr ~nr ~kc ~rows_p:bs_p ~cols_p:cout_p ~k:cin
          ~vp:v ~vo:(tap * tbcin) ~up:u ~uo:(tap * ucincp) ~c:mo
          ~co:(tap * tb * cout_p) ~cstride:cout_p
      done;
      (* Gather: inverse-transform each (tile, co) tap vector, crop. *)
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let h0 = th * m and w0 = tw * m in
        let rh = min m (ho - h0) and rw = min m (wo - w0) in
        for co = 0 to cout - 1 do
          for tap = 0 to tt - 1 do
            yw.(tap) <- mo.((((tap * tb) + bidx) * cout_p) + co)
          done;
          k.output yw 0 yo 0 tmp;
          for dy = 0 to rh - 1 do
            let orow = (((((ni * cout) + co) * ho) + h0 + dy) * wo) + w0 in
            let yrow = dy * m in
            for dx = 0 to rw - 1 do
              od.(orow + dx) <- yo.(yrow + dx)
            done
          done
        done
      done);
  out

let conv2d_i32_exact ?(epilogue = no_epilogue) ?out k ~scale2 ~pad ~x ~w =
  let n = Itensor.dim x 0 and cin = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and wd = Itensor.dim x 3 in
  let cout = Itensor.dim w 0 in
  let t = k.tile and m = k.mout in
  let r = t - m + 1 in
  if Itensor.dim w 1 <> cin then
    invalid_arg "Kernels.conv2d_i32_exact: channel mismatch";
  if Itensor.dim w 2 <> r || Itensor.dim w 3 <> r then
    invalid_arg "Kernels.conv2d_i32_exact: kernel size mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:r ~kw:r ~stride:1 ~pad in
  let tt = t * t in
  let out =
    match out with
    | None -> Itensor.zeros [| n; cout; ho; wo |]
    | Some o ->
        if
          Itensor.dim o 0 <> n || Itensor.dim o 1 <> cout
          || Itensor.dim o 2 <> ho || Itensor.dim o 3 <> wo
        then invalid_arg "Kernels.conv2d_i32_exact: out shape mismatch";
        o
  in
  let od = out.Itensor.data and xd = x.Itensor.data in
  let { Microkernel.mr; nr; kc } = Microkernel.config () in
  let cout_p = Microkernel.round_up cout nr in
  let ucincp = cin * cout_p in
  let u = P.Scratch.borrow ia_u (tt * ucincp) in
  P.parallel_for ~lo:0 ~hi:(cout * cin) (fun idx ->
      let co = idx / cin and ci = idx mod cin in
      let f = P.Scratch.borrow ia_tile (r * r) in
      let wt = P.Scratch.borrow ia_xt tt in
      let tmp = P.Scratch.borrow ia_tmp (t * r) in
      Array.blit w.Itensor.data (((co * cin) + ci) * r * r) f 0 (r * r);
      k.weight f 0 wt 0 tmp;
      let jb = co / nr and jr = co mod nr in
      let base = (((jb * cin) + ci) * nr) + jr in
      for tap = 0 to tt - 1 do
        u.((tap * ucincp) + base) <- wt.(tap)
      done);
  if cout_p > cout then
    for co = cout to cout_p - 1 do
      let jb = co / nr and jr = co mod nr in
      for ci = 0 to cin - 1 do
        let base = (((jb * cin) + ci) * nr) + jr in
        for tap = 0 to tt - 1 do
          u.((tap * ucincp) + base) <- 0
        done
      done
    done;
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  let tiles_per_img = n_th * n_tw in
  let total = n * tiles_per_img in
  let tb = Microkernel.round_up (block_of ~total) mr in
  let tbcin = tb * cin in
  let nblocks = (total + tb - 1) / tb in
  P.parallel_for ~chunk:1 ~lo:0 ~hi:nblocks (fun blk ->
      let b0 = blk * tb in
      let bs = min tb (total - b0) in
      let bs_p = Microkernel.round_up bs mr in
      let tile = P.Scratch.borrow ia_tile tt in
      let xt = P.Scratch.borrow ia_xt tt in
      let tmp = P.Scratch.borrow ia_tmp tt in
      let v = P.Scratch.borrow ia_v (tt * tbcin) in
      let mo = P.Scratch.borrow ia_mo (tt * tb * cout_p) in
      let yw = P.Scratch.borrow ia_yw tt in
      let yo = P.Scratch.borrow ia_yo (m * m) in
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          load_tile_i xd ~h ~w:wd
            ~base:(((ni * cin) + ci) * h * wd)
            ~pad ~h0:(th * m) ~w0:(tw * m) ~t tile;
          k.input tile 0 xt 0 tmp;
          let vbase = (((ib * cin) + ci) * mr) + ir in
          for tap = 0 to tt - 1 do
            v.((tap * tbcin) + vbase) <- xt.(tap)
          done
        done
      done;
      for bidx = bs to bs_p - 1 do
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          let vbase = (((ib * cin) + ci) * mr) + ir in
          for tap = 0 to tt - 1 do
            v.((tap * tbcin) + vbase) <- 0
          done
        done
      done;
      Array.fill mo 0 (tt * tb * cout_p) 0;
      for tap = 0 to tt - 1 do
        Microkernel.gemm_i32 ~mr ~nr ~kc ~rows_p:bs_p ~cols_p:cout_p ~k:cin
          ~vp:v ~vo:(tap * tbcin) ~up:u ~uo:(tap * ucincp) ~c:mo
          ~co:(tap * tb * cout_p) ~cstride:cout_p
      done;
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let h0 = th * m and w0 = tw * m in
        let rh = min m (ho - h0) and rw = min m (wo - w0) in
        for co = 0 to cout - 1 do
          for tap = 0 to tt - 1 do
            yw.(tap) <- mo.((((tap * tb) + bidx) * cout_p) + co)
          done;
          k.output yw 0 yo 0 tmp;
          for dy = 0 to rh - 1 do
            let orow = (((((ni * cout) + co) * ho) + h0 + dy) * wo) + w0 in
            let yrow = dy * m in
            for dx = 0 to rw - 1 do
              let raw = yo.(yrow + dx) in
              assert (raw mod scale2 = 0);
              epilogue_store epilogue od (orow + dx) (raw / scale2)
            done
          done
        done
      done);
  out
