(** Generalised 2-D Winograd convolution for arbitrary odd kernels.

    Nests two 1-D Toom–Cook transforms from {!Generator} — the same
    construction behind the hardcoded F(m,3) variants, but for any
    [F(m×m, r×r)] with odd [r] (5×5 and 7×7 kernels, which the paper's
    im2col engine supports in hardware and which Winograd can also cover
    in software).  FP32 only: the bit-growth for r > 3 makes the integer
    path impractical, which is precisely why the paper restricts the
    accelerator to 3×3. *)

type t

val create : ?points:Twq_util.Rat.t list -> m:int -> r:int -> unit -> t
(** @raise Invalid_argument as {!Generator.make}. *)

val m : t -> int
val r : t -> int

val macs_reduction : t -> float
(** [(m·r / (m+r−1))²]. *)

val conv2d :
  t ->
  ?pad:int ->
  x:Twq_tensor.Tensor.t ->
  w:Twq_tensor.Tensor.t ->
  unit ->
  Twq_tensor.Tensor.t
(** Stride-1 convolution of NCHW [x] with [\[cout; cin; r; r\]] weights;
    numerically equal to [Ops.conv2d].  Runs the compiled tap-major
    {!Kernels} path; bit-identical to {!conv2d_ref}. *)

val conv2d_ref :
  t ->
  ?pad:int ->
  x:Twq_tensor.Tensor.t ->
  w:Twq_tensor.Tensor.t ->
  unit ->
  Twq_tensor.Tensor.t
(** Tile-major reference path through the generic matmul sandwich — the
    oracle for {!conv2d}. *)
