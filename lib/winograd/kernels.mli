(** Allocation-free specialized Winograd transform kernels and tap-major
    convolution drivers.

    This is the software analogue of the paper's transformation engines:
    the constant matrices [Bᵀ], [G], [Aᵀ] are specialized into straight-line
    code (shift-and-add for the integer path, constant-folded multiplies for
    the float path) that writes into caller-provided scratch, and the tile
    loop is reformulated tap-major — input tiles are scattered into [t·t]
    per-tap [tiles × cin] panels, each tap runs one flat GEMM against the
    [cin × cout] transformed weights, and results are gathered back through
    the inverse transform.  The hot loop performs zero per-tile allocation;
    workers stage everything in per-domain {!Twq_util.Parallel.Scratch}
    arenas.

    Numerical contract: the float kernels reproduce the generic
    [Ops.matmul] sandwich ({!Transform.input_tile} and friends) operation
    for operation — same accumulation order, same term skipping — so
    outputs are identical to the reference path ([=] on every element; the
    only tolerated deviation is the sign of a zero).  The integer kernels
    are exact and bit-identical to {!Transform.int_sandwich}. *)

type 'a kernel = {
  tile : int;  (** transform size [t = m + r - 1] *)
  mout : int;  (** output tile size [m] *)
  input : 'a array -> int -> 'a array -> int -> 'a array -> unit;
      (** [input src soff dst doff tmp] — Bᵀ·x·B.  Reads a row-major [t×t]
          tile at [soff], writes [t×t] taps at [doff].  [tmp] is caller
          scratch of at least [t·t]; [dst]/[tmp]/[src] must not alias. *)
  weight : 'a array -> int -> 'a array -> int -> 'a array -> unit;
      (** [weight src soff dst doff tmp] — G·f·Gᵀ.  Reads [r×r], writes
          [t×t]; [tmp] at least [t·r]. *)
  output : 'a array -> int -> 'a array -> int -> 'a array -> unit;
      (** [output src soff dst doff tmp] — Aᵀ·y·A.  Reads [t×t], writes
          [m×m]; [tmp] at least [m·t]. *)
}

(** Fused elementwise epilogue applied in the producing conv driver's
    output write loop — the software analogue of the accelerator's FixPipe
    post-processing stage.  The optional saturating residual add aligns
    both operands onto the common power-of-two output grid with hardware
    round-shifts before saturating to [bits]; ReLU clamps negatives last.
    [other] must share the destination's row-major layout (same shape),
    because the fused store indexes it with the destination's flat
    offset. *)
type epilogue = { relu : bool; add : add_spec option }

and add_spec = {
  other : int array;  (** residual operand, same layout as the output *)
  shift_self : int;   (** right shift aligning the producer's output *)
  shift_other : int;  (** right shift aligning [other] *)
  bits : int;         (** saturation width of the sum (8 for int8) *)
}

val no_epilogue : epilogue
(** Identity epilogue: plain store. *)

val epilogue_store : epilogue -> int array -> int -> int -> unit
(** [epilogue_store e dst off v] — apply [e] to the requantized value [v]
    and store the result at [dst.(off)]:
    [add] (round-shift both operands, sum, saturate), then [relu]. *)

val f32_specialized : Transform.variant -> float kernel
(** Fully unrolled float transforms for F2/F4/F6 with shared
    sign-symmetric products; identical (up to zero sign) to the
    {!Transform.input_tile}/[weight_tile]/[output_tile] sandwiches. *)

val i32_specialized : Transform.variant -> int kernel
(** Fully unrolled shift-add integer transforms over the minimally scaled
    integral matrices; bit-identical to {!Transform.input_tile_int},
    {!Transform.weight_tile_int_scaled}, {!Transform.output_tile_int}. *)

val f32_of_mats :
  bt:float array array ->
  g:float array array ->
  at:float array array ->
  float kernel
(** Compile arbitrary transform matrices ([bt : t×t], [g : t×r],
    [at : m×t]) into sparse straight-line plans.  Bit-identical (including
    zero signs) to the [Ops.matmul] sandwich with the same matrices — used
    by {!Gconv} for generated [F(m,r)] instances. *)

val i32_of_mats :
  bt:int array array ->
  g:int array array ->
  at:int array array ->
  int kernel
(** Integer analogue of {!f32_of_mats}: compile arbitrary *integer*
    transform matrices into sparse straight-line plans.  Exact arithmetic
    — used by {!Rns} both for the common-denominator-lifted matrices and
    for their per-modulus residue reductions. *)

val load_tile_f :
  float array ->
  h:int ->
  w:int ->
  base:int ->
  pad:int ->
  h0:int ->
  w0:int ->
  t:int ->
  float array ->
  unit
(** [load_tile_f xd ~h ~w ~base ~pad ~h0 ~w0 ~t dst] copies the [t×t]
    window whose top-left corner is at [(h0, w0)] of the padded [h×w]
    plane starting at [xd.(base)] into [dst] (row-major), zero-filling
    out-of-range reads. *)

val load_tile_i :
  int array ->
  h:int ->
  w:int ->
  base:int ->
  pad:int ->
  h0:int ->
  w0:int ->
  t:int ->
  int array ->
  unit

val block_of : total:int -> int
(** Tiles per scheduling block used by the packed drivers: big enough
    that each per-tap GEMM runs over a panel, small enough to keep all
    domains busy.  Exposed for drivers built outside this module
    ({!Rns}); per-tile results never depend on the grouping. *)

val conv2d_f32 :
  float kernel ->
  pad:int ->
  x:Twq_tensor.Tensor.t ->
  w:Twq_tensor.Tensor.t ->
  Twq_tensor.Tensor.t
(** Tap-major Winograd convolution (stride 1, no bias): NCHW [x] against
    [\[cout; cin; r; r\]] weights.  The per-tap GEMMs run through
    {!Microkernel} over register-block-packed panels; per
    (tile, tap, co) the accumulation order is unchanged (ascending [ci],
    left-associated), so outputs equal {!conv2d_f32_ref} — and hence the
    tile-major reference ({!Conv.conv2d_ref} / {!Gconv.conv2d_ref}) —
    element for element under [=] (zero signs may differ: the reference
    skips products whose input tap is exactly 0.0, the microkernel does
    not). *)

val conv2d_f32_ref :
  float kernel ->
  pad:int ->
  x:Twq_tensor.Tensor.t ->
  w:Twq_tensor.Tensor.t ->
  Twq_tensor.Tensor.t
(** Naive triple-loop tap-major driver, kept as the oracle for
    {!conv2d_f32} (and paired [-naive] bench rows). *)

val conv2d_i32_exact :
  ?epilogue:epilogue ->
  ?out:Twq_tensor.Itensor.t ->
  int kernel ->
  scale2:int ->
  pad:int ->
  x:Twq_tensor.Itensor.t ->
  w:Twq_tensor.Itensor.t ->
  Twq_tensor.Itensor.t
(** Bit-true integer tap-major convolution; every output of the scaled
    integral sandwich is asserted divisible by [scale2 =
    (bt_scale·g_scale·at_scale)²] and divided back down, exactly as
    {!Conv.conv2d_int_bit_true_ref}.  The per-tap GEMMs run through
    {!Microkernel}; integer addition is associative so the packed path
    is unconditionally bit-identical to {!conv2d_i32_exact_ref}.
    [epilogue] fuses the elementwise post-processing into the output
    write loop; [out] writes into a caller-provided [\[n; cout; ho; wo\]]
    tensor (planner arena buffers) instead of allocating — the returned
    tensor is [out] itself. *)

val conv2d_i32_exact_ref :
  ?epilogue:epilogue ->
  ?out:Twq_tensor.Itensor.t ->
  int kernel ->
  scale2:int ->
  pad:int ->
  x:Twq_tensor.Itensor.t ->
  w:Twq_tensor.Itensor.t ->
  Twq_tensor.Itensor.t
(** Naive triple-loop tap-major driver, kept as the bit-identity oracle
    for {!conv2d_i32_exact}. *)
