module Tensor = Twq_tensor.Tensor
module Ops = Twq_tensor.Ops
module Shape = Twq_tensor.Shape

type t = {
  gen : Generator.t;
  bt : Tensor.t;  (* n×n *)
  b : Tensor.t;
  g : Tensor.t;   (* n×r *)
  gt : Tensor.t;
  at : Tensor.t;  (* m×n *)
  a : Tensor.t;
  kern : float Kernels.kernel;  (* compiled tap-major plans *)
}

let tensor_of_rmat m =
  let f = Twq_util.Rmat.to_float m in
  Tensor.init
    [| Array.length f; Array.length f.(0) |]
    (fun idx -> f.(idx.(0)).(idx.(1)))

let create ?points ~m ~r () =
  let points =
    match points with Some p -> p | None -> Generator.lavin_points (m + r - 2)
  in
  let gen = Generator.make ~points ~m ~r in
  let bt = tensor_of_rmat gen.Generator.bt in
  let g = tensor_of_rmat gen.Generator.g in
  let at = tensor_of_rmat gen.Generator.at in
  {
    gen;
    bt;
    b = Ops.transpose bt;
    g;
    gt = Ops.transpose g;
    at;
    a = Ops.transpose at;
    kern =
      Kernels.f32_of_mats
        ~bt:(Twq_util.Rmat.to_float gen.Generator.bt)
        ~g:(Twq_util.Rmat.to_float gen.Generator.g)
        ~at:(Twq_util.Rmat.to_float gen.Generator.at);
  }

let m t = t.gen.Generator.m
let r t = t.gen.Generator.r

let macs_reduction t =
  let m = float_of_int (m t) and r = float_of_int (r t) in
  let d1 = m *. r /. (m +. r -. 1.0) in
  d1 *. d1

(* Tile-major reference path — the oracle for the compiled tap-major
   kernel below. *)
let conv2d_ref t ?(pad = 0) ~x ~w () =
  let m_sz = m t and r_sz = r t in
  let tile = m_sz + r_sz - 1 in
  let n = Tensor.dim x 0 and cin = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and wd = Tensor.dim x 3 in
  let cout = Tensor.dim w 0 in
  if Tensor.dim w 1 <> cin then invalid_arg "Gconv.conv2d: channel mismatch";
  if Tensor.dim w 2 <> r_sz || Tensor.dim w 3 <> r_sz then
    invalid_arg "Gconv.conv2d: kernel size mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:r_sz ~kw:r_sz ~stride:1 ~pad in
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  let wt =
    Twq_util.Parallel.map_array
      (fun co ->
        Array.init cin (fun ci ->
            let f =
              Tensor.init [| r_sz; r_sz |] (fun i -> Tensor.get4 w co ci i.(0) i.(1))
            in
            Ops.matmul (Ops.matmul t.g f) t.gt))
      (Array.init cout Fun.id)
  in
  let n_th = (ho + m_sz - 1) / m_sz and n_tw = (wo + m_sz - 1) / m_sz in
  (* Tiles are independent: each (ni, th, tw) owns a disjoint output
     window, so the flattened tile loop parallelizes without locks and
     stays bit-identical to the sequential order. *)
  Twq_util.Parallel.parallel_for ~lo:0 ~hi:(n * n_th * n_tw) (fun tile_idx ->
      let ni = tile_idx / (n_th * n_tw) in
      let rest = tile_idx mod (n_th * n_tw) in
      let th = rest / n_tw and tw = rest mod n_tw in
      let xt =
        Array.init cin (fun ci ->
            let tile_t =
              Tensor.init [| tile; tile |] (fun idx ->
                  let hi = (th * m_sz) + idx.(0) - pad
                  and wi = (tw * m_sz) + idx.(1) - pad in
                  if hi < 0 || hi >= h || wi < 0 || wi >= wd then 0.0
                  else Tensor.get4 x ni ci hi wi)
            in
            Ops.matmul (Ops.matmul t.bt tile_t) t.b)
      in
      for co = 0 to cout - 1 do
        let acc = Tensor.zeros [| tile; tile |] in
        for ci = 0 to cin - 1 do
          for i = 0 to tile - 1 do
            for j = 0 to tile - 1 do
              Tensor.set2 acc i j
                (Tensor.get2 acc i j
                +. (Tensor.get2 xt.(ci) i j *. Tensor.get2 wt.(co).(ci) i j))
            done
          done
        done;
        let y = Ops.matmul (Ops.matmul t.at acc) t.a in
        for dy = 0 to m_sz - 1 do
          for dx = 0 to m_sz - 1 do
            let oh = (th * m_sz) + dy and ow = (tw * m_sz) + dx in
            if oh < ho && ow < wo then Tensor.set4 out ni co oh ow (Tensor.get2 y dy dx)
          done
        done
      done);
  out

(* Production path: the plans compiled at {!create} time drive the
   allocation-free tap-major engine.  Bit-identical to [conv2d_ref]. *)
let conv2d t ?(pad = 0) ~x ~w () =
  let cin = Tensor.dim x 1 and r_sz = r t in
  if Tensor.dim w 1 <> cin then invalid_arg "Gconv.conv2d: channel mismatch";
  if Tensor.dim w 2 <> r_sz || Tensor.dim w 3 <> r_sz then
    invalid_arg "Gconv.conv2d: kernel size mismatch";
  Kernels.conv2d_f32 t.kern ~pad ~x ~w
