open Twq_util
module Rng = Twq_util.Rng

type t = {
  points : Rat.t array;
  m : int;
  r : int;
  bt : Rmat.t;
  g : Rmat.t;
  at : Rmat.t;
}

(* Polynomial arithmetic over rationals; coefficient lists in increasing
   powers. *)
let poly_mul_linear coeffs a =
  (* p(x) · (x − a) *)
  let n = Array.length coeffs in
  Array.init (n + 1) (fun i ->
      let from_x = if i > 0 then coeffs.(i - 1) else Rat.zero in
      let from_c = if i < n then Rat.mul (Rat.neg a) coeffs.(i) else Rat.zero in
      Rat.add from_x from_c)

let product_poly points ~skip =
  let acc = ref [| Rat.one |] in
  Array.iteri
    (fun k a -> if k <> skip then acc := poly_mul_linear !acc a)
    points;
  !acc

let rat_pow a k =
  let rec loop acc k = if k = 0 then acc else loop (Rat.mul acc a) (k - 1) in
  loop Rat.one k

let make ~points ~m ~r =
  if r mod 2 = 0 then
    invalid_arg "Generator.make: even kernel sizes are not supported";
  let n = m + r - 1 in
  let points = Array.of_list points in
  if Array.length points <> n - 1 then
    invalid_arg
      (Printf.sprintf "Generator.make: F(%d,%d) needs %d finite points" m r (n - 1));
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b -> if i < j && Rat.equal a b then
            invalid_arg "Generator.make: points must be pairwise distinct")
        points;
      ignore a;
      ignore i)
    points;
  (* Bᵀ: rows of Π_{k≠i}(x − a_k); the last row carries M(x) itself. *)
  let bt =
    Rmat.make n n (fun i j ->
        if i < n - 1 then begin
          let p = product_poly points ~skip:i in
          if j < Array.length p then p.(j) else Rat.zero
        end
        else begin
          let p = product_poly points ~skip:(-1) in
          if j < Array.length p then p.(j) else Rat.zero
        end)
  in
  (* G: Vandermonde rows scaled by 1/N_i with N_i = Π_{k≠i}(a_i − a_k)
     = M_i(a_i), the Lagrange normalizer.  The factor order matters: with
     an odd finite-point count the n−2 sign flips of the reversed product
     no longer cancel, which silently negated every finite tap of G for
     even point counts (caught by the k ≤ 8 conv1d identity qcheck). *)
  let g =
    Rmat.make n r (fun i j ->
        if i < n - 1 then begin
          let n_i = ref Rat.one in
          Array.iteri
            (fun k a -> if k <> i then n_i := Rat.mul !n_i (Rat.sub points.(i) a))
            points;
          Rat.div (rat_pow points.(i) j) !n_i
        end
        else if j = r - 1 then Rat.one
        else Rat.zero)
  in
  (* Aᵀ: Vandermonde in the points, infinity column δ_{i,m-1}. *)
  let at =
    Rmat.make m n (fun i j ->
        if j < n - 1 then rat_pow points.(j) i
        else if i = m - 1 then Rat.one
        else Rat.zero)
  in
  { points; m; r; bt; g; at }

let lavin_points k =
  let rec gen acc i =
    if List.length acc >= k then List.rev acc
    else if i = 0 then gen [ Rat.zero ] 1
    else begin
      (* 1, -1, 1/2, -1/2, 2, -2, 1/3, -1/3, ... — reciprocal pairs early,
         as the point-selection literature recommends. *)
      let base = ((i - 1) / 4) + 1 in
      let v =
        match (i - 1) mod 4 with
        | 0 -> Rat.of_int base
        | 1 -> Rat.of_int (-base)
        | 2 -> Rat.make 1 (base + 1)
        | _ -> Rat.make (-1) (base + 1)
      in
      gen (v :: acc) (i + 1)
    end
  in
  gen [] 0

let matvec m x =
  Array.init (Rmat.rows m) (fun i ->
      let acc = ref 0.0 in
      for j = 0 to Rmat.cols m - 1 do
        acc := !acc +. (Rat.to_float m.(i).(j) *. x.(j))
      done;
      !acc)

let conv1d_reference t d g =
  if Array.length d <> t.m + t.r - 1 then
    invalid_arg "Generator.conv1d_reference: signal length";
  if Array.length g <> t.r then invalid_arg "Generator.conv1d_reference: kernel length";
  Array.init t.m (fun i ->
      let acc = ref 0.0 in
      for k = 0 to t.r - 1 do
        acc := !acc +. (d.(i + k) *. g.(k))
      done;
      !acc)

let conv1d t d g =
  let dt = matvec t.bt d in
  let gt = matvec t.g g in
  let prod = Array.map2 ( *. ) dt gt in
  matvec t.at prod

let fp_error_probe t ~seed ~trials =
  let rng = Rng.create seed in
  let worst = ref 0.0 in
  for _ = 1 to trials do
    let d = Array.init (t.m + t.r - 1) (fun _ -> Rng.float rng 2.0 -. 1.0) in
    let g = Array.init t.r (fun _ -> Rng.float rng 2.0 -. 1.0) in
    let y = conv1d t d g and y_ref = conv1d_reference t d g in
    Array.iteri
      (fun i v -> worst := Float.max !worst (Float.abs (v -. y_ref.(i))))
      y
  done;
  !worst
