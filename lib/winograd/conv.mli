(** Winograd convolution over full NCHW tensors (FP32 reference path).

    Only unitary-stride 3×3 convolutions are supported — exactly the layers
    the paper maps to the Winograd operator.  Outputs are numerically equal
    (up to FP rounding) to {!Twq_tensor.Ops.conv2d}. *)

val conv2d : variant:Transform.variant -> ?pad:int -> x:Twq_tensor.Tensor.t -> w:Twq_tensor.Tensor.t -> ?b:Twq_tensor.Tensor.t -> unit -> Twq_tensor.Tensor.t
(** Winograd convolution, stride 1.  Spatial output dims need not be
    multiples of the tile size; edge tiles are computed on zero-padded
    extensions and cropped.  Runs the allocation-free tap-major
    {!Kernels} path; element-for-element equal to {!conv2d_ref}. *)

val conv2d_ref : variant:Transform.variant -> ?pad:int -> x:Twq_tensor.Tensor.t -> w:Twq_tensor.Tensor.t -> ?b:Twq_tensor.Tensor.t -> unit -> Twq_tensor.Tensor.t
(** Tile-major reference path through the generic [Rmat] sandwich —
    the oracle for {!conv2d} in tests and benchmarks. *)

val conv2d_int_bit_true : variant:Transform.variant -> ?pad:int -> x:Twq_tensor.Itensor.t -> w:Twq_tensor.Itensor.t -> unit -> Twq_tensor.Itensor.t
(** Bit-true integer Winograd convolution: all transforms are carried out
    exactly in integers (each via its minimally-scaled integral matrix) and
    the final result is divided back by [(bt_scale·g_scale·at_scale)²],
    which is always exact.
    Equal to the direct integer convolution — the ground truth used by the
    tests and by the paper's "bit-true" discussion.  Runs the tap-major
    shift-add {!Kernels} path; bit-identical to
    {!conv2d_int_bit_true_ref}. *)

val conv2d_int_bit_true_ref : variant:Transform.variant -> ?pad:int -> x:Twq_tensor.Itensor.t -> w:Twq_tensor.Itensor.t -> unit -> Twq_tensor.Itensor.t
(** Tile-major integer reference via {!Transform.int_sandwich}. *)

val conv2d_int_rns :
  ?plan:Rns.plan ->
  m:int ->
  r:int ->
  ?basis:int list ->
  ?pad:int ->
  x:Twq_tensor.Itensor.t ->
  w:Twq_tensor.Itensor.t ->
  unit ->
  Twq_tensor.Itensor.t
(** Exact integer Winograd convolution through the {!Rns} backend for an
    arbitrary generated [F(m,r)] — including big tiles (F(6,3)) whose
    scaled dynamic range exceeds what the bit-true path above can carry.
    With no [plan], one is synthesized for the tensors' actual value
    ranges and channel count, using [basis] if given or
    {!Rns.suggest_basis} otherwise.  Bit-identical to the direct integer
    convolution.
    @raise Rns.Rns_error on basis/range rejection. *)

val tiles_along : variant:Transform.variant -> int -> int
(** Number of Winograd tiles covering a spatial extent. *)

val max_abs_error : variant:Transform.variant -> x:Twq_tensor.Tensor.t -> w:Twq_tensor.Tensor.t -> float
(** Max |winograd − direct| over the output — FP32 numerical-error probe. *)
