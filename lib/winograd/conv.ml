module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops
module Shape = Twq_tensor.Shape

let tiles_along ~variant extent =
  let m = Transform.m variant in
  (extent + m - 1) / m

(* Extract an input tile of size t×t whose top-left corner sits at
   (h0, w0) in the *padded* coordinate system; out-of-range reads are 0. *)
let load_tile_f x ~n ~c ~pad ~h0 ~w0 ~t =
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  Tensor.init [| t; t |] (fun idx ->
      let hi = h0 + idx.(0) - pad and wi = w0 + idx.(1) - pad in
      if hi < 0 || hi >= h || wi < 0 || wi >= w then 0.0
      else Tensor.get4 x n c hi wi)

let load_tile_i x ~n ~c ~pad ~h0 ~w0 ~t =
  let h = Itensor.dim x 2 and w = Itensor.dim x 3 in
  Itensor.init [| t; t |] (fun idx ->
      let hi = h0 + idx.(0) - pad and wi = w0 + idx.(1) - pad in
      if hi < 0 || hi >= h || wi < 0 || wi >= w then 0
      else Itensor.get4 x n c hi wi)

(* Tile-major reference path: per-tile tensors through the generic
   [Rmat] sandwich.  Kept as the oracle the tap-major kernels are tested
   against (and for readers: this is the textbook formulation). *)
let conv2d_ref ~variant ?(pad = 0) ~x ~w ?b () =
  let n = Tensor.dim x 0 and cin = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and wd = Tensor.dim x 3 in
  let cout = Tensor.dim w 0 in
  if Tensor.dim w 1 <> cin then invalid_arg "Conv.conv2d: channel mismatch";
  if Tensor.dim w 2 <> 3 || Tensor.dim w 3 <> 3 then
    invalid_arg "Conv.conv2d: Winograd path requires 3x3 kernels";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:3 ~kw:3 ~stride:1 ~pad in
  let m = Transform.m variant and t = Transform.t variant in
  let out = Tensor.zeros [| n; cout; ho; wo |] in
  (* Transform all weights once: [cout][cin] t×t tiles. *)
  let wt =
    Twq_util.Parallel.map_array
      (fun co ->
        Array.init cin (fun ci ->
            let f =
              Tensor.init [| 3; 3 |] (fun idx ->
                  Tensor.get4 w co ci idx.(0) idx.(1))
            in
            Transform.weight_tile variant f))
      (Array.init cout Fun.id)
  in
  let n_th = tiles_along ~variant ho and n_tw = tiles_along ~variant wo in
  (* Each (ni, th, tw) writes a disjoint output window — lock-free tile
     parallelism, bit-identical to the sequential loop. *)
  Twq_util.Parallel.parallel_for ~lo:0 ~hi:(n * n_th * n_tw) (fun tile_idx ->
      let ni = tile_idx / (n_th * n_tw) in
      let rest = tile_idx mod (n_th * n_tw) in
      let th = rest / n_tw and tw = rest mod n_tw in
      (* Transform the input tiles for every channel of this tile pos. *)
      let xt =
        Array.init cin (fun ci ->
            let tile =
              load_tile_f x ~n:ni ~c:ci ~pad ~h0:(th * m) ~w0:(tw * m) ~t
            in
            Transform.input_tile variant tile)
      in
      for co = 0 to cout - 1 do
        let acc = Tensor.zeros [| t; t |] in
        for ci = 0 to cin - 1 do
          let p = Tensor.mul xt.(ci) wt.(co).(ci) in
          Tensor.blit ~src:(Tensor.add acc p) ~dst:acc
        done;
        let y = Transform.output_tile variant acc in
        for dy = 0 to m - 1 do
          for dx = 0 to m - 1 do
            let oh = (th * m) + dy and ow = (tw * m) + dx in
            if oh < ho && ow < wo then
              Tensor.set4 out ni co oh ow (Tensor.get2 y dy dx)
          done
        done
      done);
  (match b with
  | None -> ()
  | Some bias ->
      Twq_util.Parallel.parallel_for ~lo:0 ~hi:(n * cout) (fun idx ->
          let ni = idx / cout and co = idx mod cout in
          let bv = bias.Tensor.data.(co) in
          for oh = 0 to ho - 1 do
            for ow = 0 to wo - 1 do
              Tensor.set4 out ni co oh ow (Tensor.get4 out ni co oh ow +. bv)
            done
          done));
  out

let conv2d_int_bit_true_ref ~variant ?(pad = 0) ~x ~w () =
  let n = Itensor.dim x 0 and cin = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and wd = Itensor.dim x 3 in
  let cout = Itensor.dim w 0 in
  if Itensor.dim w 1 <> cin then
    invalid_arg "Conv.conv2d_int_bit_true: channel mismatch";
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:3 ~kw:3 ~stride:1 ~pad in
  let m = Transform.m variant and t = Transform.t variant in
  let total_scale =
    Transform.bt_scale variant * Transform.g_scale variant
    * Transform.at_scale variant
  in
  let scale2 = total_scale * total_scale in
  let out = Itensor.zeros [| n; cout; ho; wo |] in
  let wt =
    Array.init cout (fun co ->
        Array.init cin (fun ci ->
            let f =
              Itensor.init [| 3; 3 |] (fun idx ->
                  Itensor.get4 w co ci idx.(0) idx.(1))
            in
            Transform.weight_tile_int_scaled variant f))
  in
  let n_th = tiles_along ~variant ho and n_tw = tiles_along ~variant wo in
  Twq_util.Parallel.parallel_for ~lo:0 ~hi:(n * n_th * n_tw) (fun tile_idx ->
      let ni = tile_idx / (n_th * n_tw) in
      let rest = tile_idx mod (n_th * n_tw) in
      let th = rest / n_tw and tw = rest mod n_tw in
      let xt =
        Array.init cin (fun ci ->
            let tile =
              load_tile_i x ~n:ni ~c:ci ~pad ~h0:(th * m) ~w0:(tw * m) ~t
            in
            Transform.input_tile_int variant tile)
      in
      for co = 0 to cout - 1 do
        let acc = Itensor.zeros [| t; t |] in
        for ci = 0 to cin - 1 do
          for i = 0 to t - 1 do
            for j = 0 to t - 1 do
              Itensor.set2 acc i j
                (Itensor.get2 acc i j
                + (Itensor.get2 xt.(ci) i j * Itensor.get2 wt.(co).(ci) i j))
            done
          done
        done;
        let y = Transform.output_tile_int variant acc in
        for dy = 0 to m - 1 do
          for dx = 0 to m - 1 do
            let oh = (th * m) + dy and ow = (tw * m) + dx in
            if oh < ho && ow < wo then begin
              let v = Itensor.get2 y dy dx in
              (* The Winograd identity guarantees exact divisibility by
                 g_scale²; assert it rather than silently truncating. *)
              assert (v mod scale2 = 0);
              Itensor.set4 out ni co oh ow (v / scale2)
            end
          done
        done
      done);
  out

(* Production path: allocation-free tap-major kernels (specialized
   shift-add / constant-folded transforms, one flat GEMM per tap).
   Element-for-element equal to [conv2d_ref]. *)
let conv2d ~variant ?(pad = 0) ~x ~w ?b () =
  let cin = Tensor.dim x 1 in
  if Tensor.dim w 1 <> cin then invalid_arg "Conv.conv2d: channel mismatch";
  if Tensor.dim w 2 <> 3 || Tensor.dim w 3 <> 3 then
    invalid_arg "Conv.conv2d: Winograd path requires 3x3 kernels";
  let out = Kernels.conv2d_f32 (Kernels.f32_specialized variant) ~pad ~x ~w in
  (match b with
  | None -> ()
  | Some bias ->
      let n = Tensor.dim out 0 and cout = Tensor.dim out 1 in
      let ho = Tensor.dim out 2 and wo = Tensor.dim out 3 in
      Twq_util.Parallel.parallel_for ~lo:0 ~hi:(n * cout) (fun idx ->
          let ni = idx / cout and co = idx mod cout in
          let bv = bias.Tensor.data.(co) in
          for oh = 0 to ho - 1 do
            for ow = 0 to wo - 1 do
              Tensor.set4 out ni co oh ow (Tensor.get4 out ni co oh ow +. bv)
            done
          done));
  out

let conv2d_int_bit_true ~variant ?(pad = 0) ~x ~w () =
  let cin = Itensor.dim x 1 in
  if Itensor.dim w 1 <> cin then
    invalid_arg "Conv.conv2d_int_bit_true: channel mismatch";
  if Itensor.dim w 2 <> 3 || Itensor.dim w 3 <> 3 then
    invalid_arg "Conv.conv2d_int_bit_true: Winograd path requires 3x3 kernels";
  let total_scale =
    Transform.bt_scale variant * Transform.g_scale variant
    * Transform.at_scale variant
  in
  let scale2 = total_scale * total_scale in
  Kernels.conv2d_i32_exact (Kernels.i32_specialized variant) ~scale2 ~pad ~x ~w

(* Exact integer convolution through the RNS backend: plan the basis for
   the actual channel count and value ranges (or accept a caller-built
   plan), then run the per-modulus tap-major engine. *)
let conv2d_int_rns ?plan ~m ~r ?basis ?(pad = 0) ~x ~w () =
  let cin = Itensor.dim x 1 in
  if Itensor.dim w 1 <> cin then
    invalid_arg "Conv.conv2d_int_rns: channel mismatch";
  let max_abs a = Array.fold_left (fun acc v -> max acc (abs v)) 1 a in
  let p =
    match plan with
    | Some p -> p
    | None ->
        let xmax = max_abs x.Itensor.data
        and wmax = max_abs w.Itensor.data in
        let basis =
          match basis with
          | Some b -> b
          | None -> (
              match Rns.suggest_basis ~m ~r ~cin ~xmax ~wmax () with
              | Ok b -> b
              | Error e -> raise (Rns.Rns_error e))
        in
        Rns.plan_exn ~m ~r ~basis ~cin ~xmax ~wmax ()
  in
  Rns.conv2d p ~pad ~x ~w ()

let max_abs_error ~variant ~x ~w =
  let direct = Ops.conv2d ~stride:1 ~pad:1 ~x ~w () in
  let wino = conv2d ~variant ~pad:1 ~x ~w () in
  Tensor.max_abs (Tensor.sub direct wino)
