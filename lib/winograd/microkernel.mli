(** Register-tiled, cache-blocked GEMM microkernels for the per-tap
    Winograd GEMMs.

    Operands are *packed* panels, padded to full register blocks:

    - A (tiles): [ceil(rows/MR)] consecutive [K × MR] panels; element
      [(k, lane)] of panel [ib] lives at [ib·K·MR + k·MR + lane].
    - B (weights): [ceil(cols/NR)] consecutive [K × NR] panels; element
      [(k, lane)] of panel [jb] lives at [jb·K·NR + k·NR + lane].
    - C: row-major with row stride [cstride ≥ cols_p], updated in place.

    Pad lanes of A and B must be zero: the corresponding C elements then
    compute exact zeros and callers simply never read them.

    Numerical contract: each C element is a left fold over ascending [k]
    seeded from C's current value, so KC-panel splitting does not change
    the association. The integer kernels are bit-identical to the naive
    triple loop; the float kernels are IEEE-identical up to the sign of
    zeros (the naive drivers skip zero left operands, the kernels do
    not). *)

type cfg = { mr : int; nr : int; kc : int }

val default_cfg : cfg
(** Compiled defaults (MR=NR=4, KC=256), overridable at process start
    via [TWQ_GEMM_MR] / [TWQ_GEMM_NR] / [TWQ_GEMM_KC]. *)

val config : unit -> cfg
(** Current configuration. Drivers read it once per call, so a
    mid-call change cannot desync packing from consumption. *)

val set_config : ?mr:int -> ?nr:int -> ?kc:int -> unit -> unit
(** Override fields of the current configuration (clamped to sane
    ranges). Intended for tests and experiments; not thread-safe with
    respect to in-flight convolutions. *)

val reset_config : unit -> unit
(** Restore [default_cfg]. *)

val round_up : int -> int -> int
(** [round_up n b] is [n] rounded up to a multiple of [b]. *)

val gemm_f32 :
  mr:int ->
  nr:int ->
  kc:int ->
  rows_p:int ->
  cols_p:int ->
  k:int ->
  vp:float array ->
  vo:int ->
  up:float array ->
  uo:int ->
  c:float array ->
  co:int ->
  cstride:int ->
  unit
(** [gemm_f32 ~mr ~nr ~kc ~rows_p ~cols_p ~k ~vp ~vo ~up ~uo ~c ~co
    ~cstride] accumulates the [rows_p × cols_p] product of the packed
    panels at [vp+vo] / [up+uo] into [c] starting at [co]. [rows_p] and
    [cols_p] must be multiples of [mr] and [nr] respectively. *)

val gemm_i32 :
  mr:int ->
  nr:int ->
  kc:int ->
  rows_p:int ->
  cols_p:int ->
  k:int ->
  vp:int array ->
  vo:int ->
  up:int array ->
  uo:int ->
  c:int array ->
  co:int ->
  cstride:int ->
  unit
(** Integer variant of {!gemm_f32}; exact arithmetic, bit-identical to
    the naive ascending-[k] triple loop. *)
