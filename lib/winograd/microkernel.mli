(** Register-tiled, cache-blocked GEMM microkernels for the per-tap
    Winograd GEMMs.

    Operands are *packed* panels, padded to full register blocks:

    - A (tiles): [ceil(rows/MR)] consecutive [K × MR] panels; element
      [(k, lane)] of panel [ib] lives at [ib·K·MR + k·MR + lane].
    - B (weights): [ceil(cols/NR)] consecutive [K × NR] panels; element
      [(k, lane)] of panel [jb] lives at [jb·K·NR + k·NR + lane].
    - C: row-major with row stride [cstride ≥ cols_p], updated in place.

    Pad lanes of A and B must be zero: the corresponding C elements then
    compute exact zeros and callers simply never read them.

    Numerical contract: each C element is a left fold over ascending [k]
    seeded from C's current value, so KC-panel splitting does not change
    the association. The integer kernels are bit-identical to the naive
    triple loop; the float kernels are IEEE-identical up to the sign of
    zeros (the naive drivers skip zero left operands, the kernels do
    not). *)

type cfg = { mr : int; nr : int; kc : int }

val default_cfg : cfg
(** Compiled defaults (MR=NR=4, KC=256), overridable at process start
    via [TWQ_GEMM_MR] / [TWQ_GEMM_NR] / [TWQ_GEMM_KC]. A malformed or
    non-positive override raises [Invalid_argument] naming the variable
    and the offending value (fail fast at module initialization);
    positive values outside the supported range are clamped. *)

val config : unit -> cfg
(** Current configuration. Drivers read it once per call, so a
    mid-call change cannot desync packing from consumption. *)

val set_config : ?mr:int -> ?nr:int -> ?kc:int -> unit -> unit
(** Override fields of the current configuration (clamped to sane
    ranges). Intended for tests and experiments; not thread-safe with
    respect to in-flight convolutions. *)

val reset_config : unit -> unit
(** Restore [default_cfg] and the default sparse threshold. *)

val sparse_threshold : unit -> float
(** Density cutoff for the compressed-panel path: a tap whose weight
    panel density is strictly below this is packed compressed (see
    {!compress_panel}) by [Tapwise.pack]. Default 0.5, overridable at
    process start via [TWQ_SPARSE_THRESHOLD]; malformed or
    out-of-[0, 1] values raise [Invalid_argument] naming the variable
    and value. 0.0 disables the sparse path entirely. *)

val set_sparse_threshold : float -> unit
(** Override the sparse/dense cutoff. Raises [Invalid_argument] outside
    [0, 1]. Only affects packs performed after the call. *)

val round_up : int -> int -> int
(** [round_up n b] is [n] rounded up to a multiple of [b]. *)

val gemm_f32 :
  mr:int ->
  nr:int ->
  kc:int ->
  rows_p:int ->
  cols_p:int ->
  k:int ->
  vp:float array ->
  vo:int ->
  up:float array ->
  uo:int ->
  c:float array ->
  co:int ->
  cstride:int ->
  unit
(** [gemm_f32 ~mr ~nr ~kc ~rows_p ~cols_p ~k ~vp ~vo ~up ~uo ~c ~co
    ~cstride] accumulates the [rows_p × cols_p] product of the packed
    panels at [vp+vo] / [up+uo] into [c] starting at [co]. [rows_p] and
    [cols_p] must be multiples of [mr] and [nr] respectively. *)

val gemm_i32 :
  mr:int ->
  nr:int ->
  kc:int ->
  rows_p:int ->
  cols_p:int ->
  k:int ->
  vp:int array ->
  vo:int ->
  up:int array ->
  uo:int ->
  c:int array ->
  co:int ->
  cstride:int ->
  unit
(** Integer variant of {!gemm_f32}; exact arithmetic, bit-identical to
    the naive ascending-[k] triple loop. *)

(** {1 Compressed panels for pruned taps}

    Block-compressed form of one tap's B panel at the measured-optimal
    granularity: per output column, the ascending list of nonzero k
    rows with their values (compressed sparse columns — the degenerate
    1×1 block of the block-compressed family; larger blocks are never
    all-zero under unstructured magnitude pruning at useful densities).
    Execution skips zero entries only, so the integer result is
    bit-identical to dense execution of the same weights. *)

type sparse = {
  sp_k : int;  (** logical panel depth (Cin) *)
  sp_cols : int;  (** packed column count (Cout rounded up to NR) *)
  sp_off : int array;  (** [cols+1] CSC offsets into [sp_idx]/[sp_val] *)
  sp_idx : int array;  (** nonzero k rows, ascending per column *)
  sp_val : int array;  (** matching weight values *)
}

val compress_panel : nr:int -> k:int -> cols:int -> int array -> uo:int -> sparse
(** [compress_panel ~nr ~k ~cols up ~uo] compresses the NR-packed
    [k × cols] B panel starting at [up.(uo)]. Padded columns (all-zero
    by the packing contract) come out empty. *)

val sparse_nnz : sparse -> int
(** Number of stored nonzero entries. *)

val gemm_i32_sparse :
  mr:int ->
  rows_p:int ->
  sp:sparse ->
  vp:int array ->
  vo:int ->
  c:int array ->
  co:int ->
  cstride:int ->
  unit
(** [gemm_i32_sparse ~mr ~rows_p ~sp ~vp ~vo ~c ~co ~cstride]
    accumulates the [rows_p × sp.sp_cols] product of the packed A
    panels at [vp+vo] and the compressed B panel into [c] at [co] (row
    stride [cstride]). [rows_p] must be a multiple of [mr]. Bit-identical
    to {!gemm_i32} on the panel [sp] was compressed from. *)
