(* Register-tiled, cache-blocked GEMM microkernels for the per-tap
   Winograd GEMMs.

   The tap-major drivers reduce every Winograd tap to one
   [tiles × Cin] · [Cin × Cout] product.  This module supplies the inner
   engine for those products: MR×NR accumulator-block kernels over
   *packed* operand panels, plus a KC-blocked driver that keeps one
   [KC × NR] weight panel L1-resident while it sweeps the tile panels —
   the same work-group tiling shape as a GPU Winograd kernel's
   per-work-group [tiles × Cout] block.

   Packed layouts (both panels are padded to full register blocks; pad
   lanes must be zero so padded outputs stay finite and unread):

   - A (tiles) panels: [ceil(rows/MR)] consecutive panels of [K × MR] —
     element (k, lane) of panel ib at [ib·K·MR + k·MR + lane].  The
     microkernel's k-loop then reads one contiguous MR-vector per step.
   - B (weights) panels: [ceil(cols/NR)] consecutive panels of [K × NR] —
     element (k, lane) of panel jb at [jb·K·NR + k·NR + lane], so the
     co-loop streams contiguously instead of striding across a whole
     [Cout] row per k step.
   - C: row-major [rows_p × cstride] with [cstride ≥ cols_p]; the
     MR×NR block at (ib·MR, jb·NR) is updated in place.

   Numerical contract: every C element is a left fold over ascending k —
   the kernels load the current C value into the accumulator, add
   products in ascending-k order, and store once.  Splitting K into KC
   panels therefore does not change the association: the fold simply
   resumes from the stored partial.  This is exactly the accumulation
   order of the naive triple loop, so the integer kernels are
   bit-identical and the float kernels are IEEE-identical up to the sign
   of zeros (the naive drivers skip products with a zero left operand;
   the kernels do not, which can only flip a zero's sign for finite
   inputs). *)

(* ------------------------------------------------------------- config *)

type cfg = { mr : int; nr : int; kc : int }

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let env_int name default lo hi =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> clamp lo hi v
      | None -> default)

(* Compiled defaults: a 4×4 accumulator block (the specialized kernels
   below; 16 float refs that ocamlopt's [eliminate_ref] keeps unboxed)
   and a 256-deep k panel — one panel covers Cin for every ResNet-style
   layer, so the fold usually runs in a single pass.  Register blocks
   other than {1..4}×4 fall back to a generic (slower, still
   order-preserving) kernel; they exist for experiments via the
   environment overrides. *)
let default_cfg =
  {
    mr = env_int "TWQ_GEMM_MR" 4 1 8;
    nr = env_int "TWQ_GEMM_NR" 4 1 8;
    kc = env_int "TWQ_GEMM_KC" 256 8 4096;
  }

let current = ref default_cfg

let config () = !current

let set_config ?mr ?nr ?kc () =
  let c = !current in
  current :=
    {
      mr = (match mr with Some v -> clamp 1 8 v | None -> c.mr);
      nr = (match nr with Some v -> clamp 1 8 v | None -> c.nr);
      kc = (match kc with Some v -> clamp 8 4096 v | None -> c.kc);
    }

let reset_config () = current := default_cfg

let round_up n b = (n + b - 1) / b * b

(* ------------------------------------------------------ float kernels *)

(* [kf_MRx4 v vo u uo kn c o0 cs]: MR×4 block update.  [vo]/[uo] point at
   the k=0 element of the A/B panel slice, [o0] at C's top-left element
   of the block, [cs] is C's row stride, [kn] the panel depth. *)

let kf_4x4 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let o3 = o2 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c30 = ref (Array.unsafe_get c o3)
  and c31 = ref (Array.unsafe_get c (o3 + 1))
  and c32 = ref (Array.unsafe_get c (o3 + 2))
  and c33 = ref (Array.unsafe_get c (o3 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 4) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2)
    and a3 = Array.unsafe_get v (a + 3) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3);
    c30 := !c30 +. (a3 *. b0);
    c31 := !c31 +. (a3 *. b1);
    c32 := !c32 +. (a3 *. b2);
    c33 := !c33 +. (a3 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c o3 !c30;
  Array.unsafe_set c (o3 + 1) !c31;
  Array.unsafe_set c (o3 + 2) !c32;
  Array.unsafe_set c (o3 + 3) !c33

let kf_2x4 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 2) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a and a1 = Array.unsafe_get v (a + 1) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13

let kf_1x4 (v : float array) vo (u : float array) uo kn (c : float array) o0
    _cs =
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3)) in
  for k = 0 to kn - 1 do
    let b = uo + (k * 4) in
    let a0 = Array.unsafe_get v (vo + k) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03

let kf_3x4 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 3) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23

(* Generic MR×NR fallback for experimental register blocks: C-resident
   accumulators, same ascending-k fold per element. *)
let kf_gen ~mr ~nr (v : float array) vo (u : float array) uo kn
    (c : float array) o0 cs =
  for k = 0 to kn - 1 do
    let a = vo + (k * mr) and b = uo + (k * nr) in
    for i = 0 to mr - 1 do
      let ai = Array.unsafe_get v (a + i) in
      let crow = o0 + (i * cs) in
      for j = 0 to nr - 1 do
        Array.unsafe_set c (crow + j)
          (Array.unsafe_get c (crow + j) +. (ai *. Array.unsafe_get u (b + j)))
      done
    done
  done

(* -------------------------------------------------------- int kernels *)

let ki_4x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let o3 = o2 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c30 = ref (Array.unsafe_get c o3)
  and c31 = ref (Array.unsafe_get c (o3 + 1))
  and c32 = ref (Array.unsafe_get c (o3 + 2))
  and c33 = ref (Array.unsafe_get c (o3 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 4) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2)
    and a3 = Array.unsafe_get v (a + 3) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3);
    c20 := !c20 + (a2 * b0);
    c21 := !c21 + (a2 * b1);
    c22 := !c22 + (a2 * b2);
    c23 := !c23 + (a2 * b3);
    c30 := !c30 + (a3 * b0);
    c31 := !c31 + (a3 * b1);
    c32 := !c32 + (a3 * b2);
    c33 := !c33 + (a3 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c o3 !c30;
  Array.unsafe_set c (o3 + 1) !c31;
  Array.unsafe_set c (o3 + 2) !c32;
  Array.unsafe_set c (o3 + 3) !c33

let ki_2x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs =
  let o1 = o0 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 2) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a and a1 = Array.unsafe_get v (a + 1) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13

let ki_1x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 _cs =
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3)) in
  for k = 0 to kn - 1 do
    let b = uo + (k * 4) in
    let a0 = Array.unsafe_get v (vo + k) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03

let ki_3x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 3) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3);
    c20 := !c20 + (a2 * b0);
    c21 := !c21 + (a2 * b1);
    c22 := !c22 + (a2 * b2);
    c23 := !c23 + (a2 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23

let ki_gen ~mr ~nr (v : int array) vo (u : int array) uo kn (c : int array) o0
    cs =
  for k = 0 to kn - 1 do
    let a = vo + (k * mr) and b = uo + (k * nr) in
    for i = 0 to mr - 1 do
      let ai = Array.unsafe_get v (a + i) in
      let crow = o0 + (i * cs) in
      for j = 0 to nr - 1 do
        Array.unsafe_set c (crow + j)
          (Array.unsafe_get c (crow + j) + (ai * Array.unsafe_get u (b + j)))
      done
    done
  done

(* ------------------------------------------------------ blocked driver *)

(* [gemm ~mr ~nr ~kc ~rows_p ~cols_p ~k ...] updates the [rows_p × cols_p]
   block of C (row stride [cstride]) in place with A·B over the packed
   panels.  The k dimension is processed in [kc]-deep cache panels: for
   each panel the [kc × NR] weight sub-panel is swept by every tile
   panel before the next NR block is touched, so it stays L1-resident
   across the ib loop.  C carries the partial sums between panels. *)

let gemm_f32 ~mr ~nr ~kc ~rows_p ~cols_p ~k ~(vp : float array) ~vo
    ~(up : float array) ~uo ~(c : float array) ~co ~cstride =
  let kern =
    match (mr, nr) with
    | 4, 4 -> kf_4x4
    | 3, 4 -> kf_3x4
    | 2, 4 -> kf_2x4
    | 1, 4 -> kf_1x4
    | _ -> kf_gen ~mr ~nr
  in
  let nib = rows_p / mr and njb = cols_p / nr in
  let k0 = ref 0 in
  while !k0 < k do
    let kn = min kc (k - !k0) in
    for jb = 0 to njb - 1 do
      let ub = uo + (jb * k * nr) + (!k0 * nr) in
      let cjb = co + (jb * nr) in
      for ib = 0 to nib - 1 do
        let vb = vo + (ib * k * mr) + (!k0 * mr) in
        kern vp vb up ub kn c (cjb + (ib * mr * cstride)) cstride
      done
    done;
    k0 := !k0 + kn
  done

let gemm_i32 ~mr ~nr ~kc ~rows_p ~cols_p ~k ~(vp : int array) ~vo
    ~(up : int array) ~uo ~(c : int array) ~co ~cstride =
  let kern =
    match (mr, nr) with
    | 4, 4 -> ki_4x4
    | 3, 4 -> ki_3x4
    | 2, 4 -> ki_2x4
    | 1, 4 -> ki_1x4
    | _ -> ki_gen ~mr ~nr
  in
  let nib = rows_p / mr and njb = cols_p / nr in
  let k0 = ref 0 in
  while !k0 < k do
    let kn = min kc (k - !k0) in
    for jb = 0 to njb - 1 do
      let ub = uo + (jb * k * nr) + (!k0 * nr) in
      let cjb = co + (jb * nr) in
      for ib = 0 to nib - 1 do
        let vb = vo + (ib * k * mr) + (!k0 * mr) in
        kern vp vb up ub kn c (cjb + (ib * mr * cstride)) cstride
      done
    done;
    k0 := !k0 + kn
  done
