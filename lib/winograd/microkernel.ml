(* Register-tiled, cache-blocked GEMM microkernels for the per-tap
   Winograd GEMMs.

   The tap-major drivers reduce every Winograd tap to one
   [tiles × Cin] · [Cin × Cout] product.  This module supplies the inner
   engine for those products: MR×NR accumulator-block kernels over
   *packed* operand panels, plus a KC-blocked driver that keeps one
   [KC × NR] weight panel L1-resident while it sweeps the tile panels —
   the same work-group tiling shape as a GPU Winograd kernel's
   per-work-group [tiles × Cout] block.

   Packed layouts (both panels are padded to full register blocks; pad
   lanes must be zero so padded outputs stay finite and unread):

   - A (tiles) panels: [ceil(rows/MR)] consecutive panels of [K × MR] —
     element (k, lane) of panel ib at [ib·K·MR + k·MR + lane].  The
     microkernel's k-loop then reads one contiguous MR-vector per step.
   - B (weights) panels: [ceil(cols/NR)] consecutive panels of [K × NR] —
     element (k, lane) of panel jb at [jb·K·NR + k·NR + lane], so the
     co-loop streams contiguously instead of striding across a whole
     [Cout] row per k step.
   - C: row-major [rows_p × cstride] with [cstride ≥ cols_p]; the
     MR×NR block at (ib·MR, jb·NR) is updated in place.

   Numerical contract: every C element is a left fold over ascending k —
   the kernels load the current C value into the accumulator, add
   products in ascending-k order, and store once.  Splitting K into KC
   panels therefore does not change the association: the fold simply
   resumes from the stored partial.  This is exactly the accumulation
   order of the naive triple loop, so the integer kernels are
   bit-identical and the float kernels are IEEE-identical up to the sign
   of zeros (the naive drivers skip products with a zero left operand;
   the kernels do not, which can only flip a zero's sign for finite
   inputs). *)

(* ------------------------------------------------------------- config *)

type cfg = { mr : int; nr : int; kc : int }

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

(* Environment overrides fail fast: a malformed or non-positive value is
   a configuration error, not a hint — falling back silently would run
   the whole benchmark with a different register block than the one the
   user asked for.  Positive values outside the supported range still
   clamp (the range is an implementation limit, not user error). *)
let env_int name default lo hi =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v > 0 -> clamp lo hi v
      | Some v ->
          invalid_arg
            (Printf.sprintf "%s: %d must be positive" name v)
      | None ->
          invalid_arg
            (Printf.sprintf "%s: %S is not an integer" name s))

let env_float name default lo hi =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when v >= lo && v <= hi -> v
      | Some v ->
          invalid_arg
            (Printf.sprintf "%s: %g must be in [%g, %g]" name v lo hi)
      | None ->
          invalid_arg
            (Printf.sprintf "%s: %S is not a number" name s))

(* Compiled defaults: a 4×4 accumulator block (the specialized kernels
   below; 16 float refs that ocamlopt's [eliminate_ref] keeps unboxed)
   and a 256-deep k panel — one panel covers Cin for every ResNet-style
   layer, so the fold usually runs in a single pass.  Register blocks
   other than {1..4}×4 fall back to a generic (slower, still
   order-preserving) kernel; they exist for experiments via the
   environment overrides. *)
let default_cfg =
  {
    mr = env_int "TWQ_GEMM_MR" 4 1 8;
    nr = env_int "TWQ_GEMM_NR" 4 1 8;
    kc = env_int "TWQ_GEMM_KC" 256 8 4096;
  }

let current = ref default_cfg

let config () = !current

let set_config ?mr ?nr ?kc () =
  let c = !current in
  current :=
    {
      mr = (match mr with Some v -> clamp 1 8 v | None -> c.mr);
      nr = (match nr with Some v -> clamp 1 8 v | None -> c.nr);
      kc = (match kc with Some v -> clamp 8 4096 v | None -> c.kc);
    }

(* Sparse/dense cutoff for the compressed-panel path: a tap whose weight
   panel density is strictly below the threshold is packed compressed
   and executed by [gemm_i32_sparse]; 0.0 disables the sparse path
   entirely, 1.0 compresses every tap with at least one zero.  The
   default 0.5 sits at the measured break-even of the compressed
   kernels (see DESIGN.md §14). *)
let default_sparse_threshold = env_float "TWQ_SPARSE_THRESHOLD" 0.5 0.0 1.0

let sparse_threshold_v = ref default_sparse_threshold

let sparse_threshold () = !sparse_threshold_v

let set_sparse_threshold t =
  if not (t >= 0.0 && t <= 1.0) then
    invalid_arg
      (Printf.sprintf
         "Microkernel.set_sparse_threshold: %g must be in [0, 1]" t);
  sparse_threshold_v := t

let reset_config () =
  current := default_cfg;
  sparse_threshold_v := default_sparse_threshold

let round_up n b = (n + b - 1) / b * b

(* ------------------------------------------------------ float kernels *)

(* [kf_MRx4 v vo u uo kn c o0 cs]: MR×4 block update.  [vo]/[uo] point at
   the k=0 element of the A/B panel slice, [o0] at C's top-left element
   of the block, [cs] is C's row stride, [kn] the panel depth. *)

let kf_4x4 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let o3 = o2 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c30 = ref (Array.unsafe_get c o3)
  and c31 = ref (Array.unsafe_get c (o3 + 1))
  and c32 = ref (Array.unsafe_get c (o3 + 2))
  and c33 = ref (Array.unsafe_get c (o3 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 4) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2)
    and a3 = Array.unsafe_get v (a + 3) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3);
    c30 := !c30 +. (a3 *. b0);
    c31 := !c31 +. (a3 *. b1);
    c32 := !c32 +. (a3 *. b2);
    c33 := !c33 +. (a3 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c o3 !c30;
  Array.unsafe_set c (o3 + 1) !c31;
  Array.unsafe_set c (o3 + 2) !c32;
  Array.unsafe_set c (o3 + 3) !c33

let kf_2x4 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 2) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a and a1 = Array.unsafe_get v (a + 1) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13

let kf_1x4 (v : float array) vo (u : float array) uo kn (c : float array) o0
    _cs =
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3)) in
  for k = 0 to kn - 1 do
    let b = uo + (k * 4) in
    let a0 = Array.unsafe_get v (vo + k) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03

let kf_3x4 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 3) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23

(* NR=8 variants: same fold, twice the column width, so wide-Cout panels
   (Cout ≥ 8 per register block) stop falling into the generic kernel.
   4×8 keeps 32 accumulator refs live — still within what ocamlopt's
   [eliminate_ref] unboxes. *)

let kf_4x8 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let o3 = o2 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c14 = ref (Array.unsafe_get c (o1 + 4))
  and c15 = ref (Array.unsafe_get c (o1 + 5))
  and c16 = ref (Array.unsafe_get c (o1 + 6))
  and c17 = ref (Array.unsafe_get c (o1 + 7))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c24 = ref (Array.unsafe_get c (o2 + 4))
  and c25 = ref (Array.unsafe_get c (o2 + 5))
  and c26 = ref (Array.unsafe_get c (o2 + 6))
  and c27 = ref (Array.unsafe_get c (o2 + 7))
  and c30 = ref (Array.unsafe_get c o3)
  and c31 = ref (Array.unsafe_get c (o3 + 1))
  and c32 = ref (Array.unsafe_get c (o3 + 2))
  and c33 = ref (Array.unsafe_get c (o3 + 3))
  and c34 = ref (Array.unsafe_get c (o3 + 4))
  and c35 = ref (Array.unsafe_get c (o3 + 5))
  and c36 = ref (Array.unsafe_get c (o3 + 6))
  and c37 = ref (Array.unsafe_get c (o3 + 7)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 4) and b = uo + (k * 8) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2)
    and a3 = Array.unsafe_get v (a + 3) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c04 := !c04 +. (a0 *. b4);
    c05 := !c05 +. (a0 *. b5);
    c06 := !c06 +. (a0 *. b6);
    c07 := !c07 +. (a0 *. b7);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c14 := !c14 +. (a1 *. b4);
    c15 := !c15 +. (a1 *. b5);
    c16 := !c16 +. (a1 *. b6);
    c17 := !c17 +. (a1 *. b7);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3);
    c24 := !c24 +. (a2 *. b4);
    c25 := !c25 +. (a2 *. b5);
    c26 := !c26 +. (a2 *. b6);
    c27 := !c27 +. (a2 *. b7);
    c30 := !c30 +. (a3 *. b0);
    c31 := !c31 +. (a3 *. b1);
    c32 := !c32 +. (a3 *. b2);
    c33 := !c33 +. (a3 *. b3);
    c34 := !c34 +. (a3 *. b4);
    c35 := !c35 +. (a3 *. b5);
    c36 := !c36 +. (a3 *. b6);
    c37 := !c37 +. (a3 *. b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c (o1 + 4) !c14;
  Array.unsafe_set c (o1 + 5) !c15;
  Array.unsafe_set c (o1 + 6) !c16;
  Array.unsafe_set c (o1 + 7) !c17;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c (o2 + 4) !c24;
  Array.unsafe_set c (o2 + 5) !c25;
  Array.unsafe_set c (o2 + 6) !c26;
  Array.unsafe_set c (o2 + 7) !c27;
  Array.unsafe_set c o3 !c30;
  Array.unsafe_set c (o3 + 1) !c31;
  Array.unsafe_set c (o3 + 2) !c32;
  Array.unsafe_set c (o3 + 3) !c33;
  Array.unsafe_set c (o3 + 4) !c34;
  Array.unsafe_set c (o3 + 5) !c35;
  Array.unsafe_set c (o3 + 6) !c36;
  Array.unsafe_set c (o3 + 7) !c37

let kf_3x8 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c14 = ref (Array.unsafe_get c (o1 + 4))
  and c15 = ref (Array.unsafe_get c (o1 + 5))
  and c16 = ref (Array.unsafe_get c (o1 + 6))
  and c17 = ref (Array.unsafe_get c (o1 + 7))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c24 = ref (Array.unsafe_get c (o2 + 4))
  and c25 = ref (Array.unsafe_get c (o2 + 5))
  and c26 = ref (Array.unsafe_get c (o2 + 6))
  and c27 = ref (Array.unsafe_get c (o2 + 7)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 3) and b = uo + (k * 8) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c04 := !c04 +. (a0 *. b4);
    c05 := !c05 +. (a0 *. b5);
    c06 := !c06 +. (a0 *. b6);
    c07 := !c07 +. (a0 *. b7);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c14 := !c14 +. (a1 *. b4);
    c15 := !c15 +. (a1 *. b5);
    c16 := !c16 +. (a1 *. b6);
    c17 := !c17 +. (a1 *. b7);
    c20 := !c20 +. (a2 *. b0);
    c21 := !c21 +. (a2 *. b1);
    c22 := !c22 +. (a2 *. b2);
    c23 := !c23 +. (a2 *. b3);
    c24 := !c24 +. (a2 *. b4);
    c25 := !c25 +. (a2 *. b5);
    c26 := !c26 +. (a2 *. b6);
    c27 := !c27 +. (a2 *. b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c (o1 + 4) !c14;
  Array.unsafe_set c (o1 + 5) !c15;
  Array.unsafe_set c (o1 + 6) !c16;
  Array.unsafe_set c (o1 + 7) !c17;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c (o2 + 4) !c24;
  Array.unsafe_set c (o2 + 5) !c25;
  Array.unsafe_set c (o2 + 6) !c26;
  Array.unsafe_set c (o2 + 7) !c27

let kf_2x8 (v : float array) vo (u : float array) uo kn (c : float array) o0 cs
    =
  let o1 = o0 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c14 = ref (Array.unsafe_get c (o1 + 4))
  and c15 = ref (Array.unsafe_get c (o1 + 5))
  and c16 = ref (Array.unsafe_get c (o1 + 6))
  and c17 = ref (Array.unsafe_get c (o1 + 7)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 2) and b = uo + (k * 8) in
    let a0 = Array.unsafe_get v a and a1 = Array.unsafe_get v (a + 1) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c04 := !c04 +. (a0 *. b4);
    c05 := !c05 +. (a0 *. b5);
    c06 := !c06 +. (a0 *. b6);
    c07 := !c07 +. (a0 *. b7);
    c10 := !c10 +. (a1 *. b0);
    c11 := !c11 +. (a1 *. b1);
    c12 := !c12 +. (a1 *. b2);
    c13 := !c13 +. (a1 *. b3);
    c14 := !c14 +. (a1 *. b4);
    c15 := !c15 +. (a1 *. b5);
    c16 := !c16 +. (a1 *. b6);
    c17 := !c17 +. (a1 *. b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c (o1 + 4) !c14;
  Array.unsafe_set c (o1 + 5) !c15;
  Array.unsafe_set c (o1 + 6) !c16;
  Array.unsafe_set c (o1 + 7) !c17

let kf_1x8 (v : float array) vo (u : float array) uo kn (c : float array) o0
    _cs =
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7)) in
  for k = 0 to kn - 1 do
    let b = uo + (k * 8) in
    let a0 = Array.unsafe_get v (vo + k) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 +. (a0 *. b0);
    c01 := !c01 +. (a0 *. b1);
    c02 := !c02 +. (a0 *. b2);
    c03 := !c03 +. (a0 *. b3);
    c04 := !c04 +. (a0 *. b4);
    c05 := !c05 +. (a0 *. b5);
    c06 := !c06 +. (a0 *. b6);
    c07 := !c07 +. (a0 *. b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07

(* Generic MR×NR fallback for experimental register blocks: C-resident
   accumulators, same ascending-k fold per element. *)
let kf_gen ~mr ~nr (v : float array) vo (u : float array) uo kn
    (c : float array) o0 cs =
  for k = 0 to kn - 1 do
    let a = vo + (k * mr) and b = uo + (k * nr) in
    for i = 0 to mr - 1 do
      let ai = Array.unsafe_get v (a + i) in
      let crow = o0 + (i * cs) in
      for j = 0 to nr - 1 do
        Array.unsafe_set c (crow + j)
          (Array.unsafe_get c (crow + j) +. (ai *. Array.unsafe_get u (b + j)))
      done
    done
  done

(* -------------------------------------------------------- int kernels *)

let ki_4x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let o3 = o2 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c30 = ref (Array.unsafe_get c o3)
  and c31 = ref (Array.unsafe_get c (o3 + 1))
  and c32 = ref (Array.unsafe_get c (o3 + 2))
  and c33 = ref (Array.unsafe_get c (o3 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 4) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2)
    and a3 = Array.unsafe_get v (a + 3) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3);
    c20 := !c20 + (a2 * b0);
    c21 := !c21 + (a2 * b1);
    c22 := !c22 + (a2 * b2);
    c23 := !c23 + (a2 * b3);
    c30 := !c30 + (a3 * b0);
    c31 := !c31 + (a3 * b1);
    c32 := !c32 + (a3 * b2);
    c33 := !c33 + (a3 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c o3 !c30;
  Array.unsafe_set c (o3 + 1) !c31;
  Array.unsafe_set c (o3 + 2) !c32;
  Array.unsafe_set c (o3 + 3) !c33

let ki_2x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs =
  let o1 = o0 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 2) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a and a1 = Array.unsafe_get v (a + 1) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13

let ki_1x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 _cs =
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3)) in
  for k = 0 to kn - 1 do
    let b = uo + (k * 4) in
    let a0 = Array.unsafe_get v (vo + k) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03

let ki_3x4 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 3) and b = uo + (k * 4) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3);
    c20 := !c20 + (a2 * b0);
    c21 := !c21 + (a2 * b1);
    c22 := !c22 + (a2 * b2);
    c23 := !c23 + (a2 * b3)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23

let ki_4x8 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let o3 = o2 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c14 = ref (Array.unsafe_get c (o1 + 4))
  and c15 = ref (Array.unsafe_get c (o1 + 5))
  and c16 = ref (Array.unsafe_get c (o1 + 6))
  and c17 = ref (Array.unsafe_get c (o1 + 7))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c24 = ref (Array.unsafe_get c (o2 + 4))
  and c25 = ref (Array.unsafe_get c (o2 + 5))
  and c26 = ref (Array.unsafe_get c (o2 + 6))
  and c27 = ref (Array.unsafe_get c (o2 + 7))
  and c30 = ref (Array.unsafe_get c o3)
  and c31 = ref (Array.unsafe_get c (o3 + 1))
  and c32 = ref (Array.unsafe_get c (o3 + 2))
  and c33 = ref (Array.unsafe_get c (o3 + 3))
  and c34 = ref (Array.unsafe_get c (o3 + 4))
  and c35 = ref (Array.unsafe_get c (o3 + 5))
  and c36 = ref (Array.unsafe_get c (o3 + 6))
  and c37 = ref (Array.unsafe_get c (o3 + 7)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 4) and b = uo + (k * 8) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2)
    and a3 = Array.unsafe_get v (a + 3) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c04 := !c04 + (a0 * b4);
    c05 := !c05 + (a0 * b5);
    c06 := !c06 + (a0 * b6);
    c07 := !c07 + (a0 * b7);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3);
    c14 := !c14 + (a1 * b4);
    c15 := !c15 + (a1 * b5);
    c16 := !c16 + (a1 * b6);
    c17 := !c17 + (a1 * b7);
    c20 := !c20 + (a2 * b0);
    c21 := !c21 + (a2 * b1);
    c22 := !c22 + (a2 * b2);
    c23 := !c23 + (a2 * b3);
    c24 := !c24 + (a2 * b4);
    c25 := !c25 + (a2 * b5);
    c26 := !c26 + (a2 * b6);
    c27 := !c27 + (a2 * b7);
    c30 := !c30 + (a3 * b0);
    c31 := !c31 + (a3 * b1);
    c32 := !c32 + (a3 * b2);
    c33 := !c33 + (a3 * b3);
    c34 := !c34 + (a3 * b4);
    c35 := !c35 + (a3 * b5);
    c36 := !c36 + (a3 * b6);
    c37 := !c37 + (a3 * b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c (o1 + 4) !c14;
  Array.unsafe_set c (o1 + 5) !c15;
  Array.unsafe_set c (o1 + 6) !c16;
  Array.unsafe_set c (o1 + 7) !c17;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c (o2 + 4) !c24;
  Array.unsafe_set c (o2 + 5) !c25;
  Array.unsafe_set c (o2 + 6) !c26;
  Array.unsafe_set c (o2 + 7) !c27;
  Array.unsafe_set c o3 !c30;
  Array.unsafe_set c (o3 + 1) !c31;
  Array.unsafe_set c (o3 + 2) !c32;
  Array.unsafe_set c (o3 + 3) !c33;
  Array.unsafe_set c (o3 + 4) !c34;
  Array.unsafe_set c (o3 + 5) !c35;
  Array.unsafe_set c (o3 + 6) !c36;
  Array.unsafe_set c (o3 + 7) !c37

let ki_3x8 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs
    =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c14 = ref (Array.unsafe_get c (o1 + 4))
  and c15 = ref (Array.unsafe_get c (o1 + 5))
  and c16 = ref (Array.unsafe_get c (o1 + 6))
  and c17 = ref (Array.unsafe_get c (o1 + 7))
  and c20 = ref (Array.unsafe_get c o2)
  and c21 = ref (Array.unsafe_get c (o2 + 1))
  and c22 = ref (Array.unsafe_get c (o2 + 2))
  and c23 = ref (Array.unsafe_get c (o2 + 3))
  and c24 = ref (Array.unsafe_get c (o2 + 4))
  and c25 = ref (Array.unsafe_get c (o2 + 5))
  and c26 = ref (Array.unsafe_get c (o2 + 6))
  and c27 = ref (Array.unsafe_get c (o2 + 7)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 3) and b = uo + (k * 8) in
    let a0 = Array.unsafe_get v a
    and a1 = Array.unsafe_get v (a + 1)
    and a2 = Array.unsafe_get v (a + 2) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c04 := !c04 + (a0 * b4);
    c05 := !c05 + (a0 * b5);
    c06 := !c06 + (a0 * b6);
    c07 := !c07 + (a0 * b7);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3);
    c14 := !c14 + (a1 * b4);
    c15 := !c15 + (a1 * b5);
    c16 := !c16 + (a1 * b6);
    c17 := !c17 + (a1 * b7);
    c20 := !c20 + (a2 * b0);
    c21 := !c21 + (a2 * b1);
    c22 := !c22 + (a2 * b2);
    c23 := !c23 + (a2 * b3);
    c24 := !c24 + (a2 * b4);
    c25 := !c25 + (a2 * b5);
    c26 := !c26 + (a2 * b6);
    c27 := !c27 + (a2 * b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c (o1 + 4) !c14;
  Array.unsafe_set c (o1 + 5) !c15;
  Array.unsafe_set c (o1 + 6) !c16;
  Array.unsafe_set c (o1 + 7) !c17;
  Array.unsafe_set c o2 !c20;
  Array.unsafe_set c (o2 + 1) !c21;
  Array.unsafe_set c (o2 + 2) !c22;
  Array.unsafe_set c (o2 + 3) !c23;
  Array.unsafe_set c (o2 + 4) !c24;
  Array.unsafe_set c (o2 + 5) !c25;
  Array.unsafe_set c (o2 + 6) !c26;
  Array.unsafe_set c (o2 + 7) !c27

let ki_2x8 (v : int array) vo (u : int array) uo kn (c : int array) o0 cs
    =
  let o1 = o0 + cs in
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7))
  and c10 = ref (Array.unsafe_get c o1)
  and c11 = ref (Array.unsafe_get c (o1 + 1))
  and c12 = ref (Array.unsafe_get c (o1 + 2))
  and c13 = ref (Array.unsafe_get c (o1 + 3))
  and c14 = ref (Array.unsafe_get c (o1 + 4))
  and c15 = ref (Array.unsafe_get c (o1 + 5))
  and c16 = ref (Array.unsafe_get c (o1 + 6))
  and c17 = ref (Array.unsafe_get c (o1 + 7)) in
  for k = 0 to kn - 1 do
    let a = vo + (k * 2) and b = uo + (k * 8) in
    let a0 = Array.unsafe_get v a and a1 = Array.unsafe_get v (a + 1) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c04 := !c04 + (a0 * b4);
    c05 := !c05 + (a0 * b5);
    c06 := !c06 + (a0 * b6);
    c07 := !c07 + (a0 * b7);
    c10 := !c10 + (a1 * b0);
    c11 := !c11 + (a1 * b1);
    c12 := !c12 + (a1 * b2);
    c13 := !c13 + (a1 * b3);
    c14 := !c14 + (a1 * b4);
    c15 := !c15 + (a1 * b5);
    c16 := !c16 + (a1 * b6);
    c17 := !c17 + (a1 * b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07;
  Array.unsafe_set c o1 !c10;
  Array.unsafe_set c (o1 + 1) !c11;
  Array.unsafe_set c (o1 + 2) !c12;
  Array.unsafe_set c (o1 + 3) !c13;
  Array.unsafe_set c (o1 + 4) !c14;
  Array.unsafe_set c (o1 + 5) !c15;
  Array.unsafe_set c (o1 + 6) !c16;
  Array.unsafe_set c (o1 + 7) !c17

let ki_1x8 (v : int array) vo (u : int array) uo kn (c : int array) o0
    _cs =
  let c00 = ref (Array.unsafe_get c o0)
  and c01 = ref (Array.unsafe_get c (o0 + 1))
  and c02 = ref (Array.unsafe_get c (o0 + 2))
  and c03 = ref (Array.unsafe_get c (o0 + 3))
  and c04 = ref (Array.unsafe_get c (o0 + 4))
  and c05 = ref (Array.unsafe_get c (o0 + 5))
  and c06 = ref (Array.unsafe_get c (o0 + 6))
  and c07 = ref (Array.unsafe_get c (o0 + 7)) in
  for k = 0 to kn - 1 do
    let b = uo + (k * 8) in
    let a0 = Array.unsafe_get v (vo + k) in
    let b0 = Array.unsafe_get u b
    and b1 = Array.unsafe_get u (b + 1)
    and b2 = Array.unsafe_get u (b + 2)
    and b3 = Array.unsafe_get u (b + 3)
    and b4 = Array.unsafe_get u (b + 4)
    and b5 = Array.unsafe_get u (b + 5)
    and b6 = Array.unsafe_get u (b + 6)
    and b7 = Array.unsafe_get u (b + 7) in
    c00 := !c00 + (a0 * b0);
    c01 := !c01 + (a0 * b1);
    c02 := !c02 + (a0 * b2);
    c03 := !c03 + (a0 * b3);
    c04 := !c04 + (a0 * b4);
    c05 := !c05 + (a0 * b5);
    c06 := !c06 + (a0 * b6);
    c07 := !c07 + (a0 * b7)
  done;
  Array.unsafe_set c o0 !c00;
  Array.unsafe_set c (o0 + 1) !c01;
  Array.unsafe_set c (o0 + 2) !c02;
  Array.unsafe_set c (o0 + 3) !c03;
  Array.unsafe_set c (o0 + 4) !c04;
  Array.unsafe_set c (o0 + 5) !c05;
  Array.unsafe_set c (o0 + 6) !c06;
  Array.unsafe_set c (o0 + 7) !c07

let ki_gen ~mr ~nr (v : int array) vo (u : int array) uo kn (c : int array) o0
    cs =
  for k = 0 to kn - 1 do
    let a = vo + (k * mr) and b = uo + (k * nr) in
    for i = 0 to mr - 1 do
      let ai = Array.unsafe_get v (a + i) in
      let crow = o0 + (i * cs) in
      for j = 0 to nr - 1 do
        Array.unsafe_set c (crow + j)
          (Array.unsafe_get c (crow + j) + (ai * Array.unsafe_get u (b + j)))
      done
    done
  done

(* ------------------------------------------------------ blocked driver *)

(* [gemm ~mr ~nr ~kc ~rows_p ~cols_p ~k ...] updates the [rows_p × cols_p]
   block of C (row stride [cstride]) in place with A·B over the packed
   panels.  The k dimension is processed in [kc]-deep cache panels: for
   each panel the [kc × NR] weight sub-panel is swept by every tile
   panel before the next NR block is touched, so it stays L1-resident
   across the ib loop.  C carries the partial sums between panels. *)

let gemm_f32 ~mr ~nr ~kc ~rows_p ~cols_p ~k ~(vp : float array) ~vo
    ~(up : float array) ~uo ~(c : float array) ~co ~cstride =
  let kern =
    match (mr, nr) with
    | 4, 4 -> kf_4x4
    | 3, 4 -> kf_3x4
    | 2, 4 -> kf_2x4
    | 1, 4 -> kf_1x4
    | 4, 8 -> kf_4x8
    | 3, 8 -> kf_3x8
    | 2, 8 -> kf_2x8
    | 1, 8 -> kf_1x8
    | _ -> kf_gen ~mr ~nr
  in
  let nib = rows_p / mr and njb = cols_p / nr in
  let k0 = ref 0 in
  while !k0 < k do
    let kn = min kc (k - !k0) in
    for jb = 0 to njb - 1 do
      let ub = uo + (jb * k * nr) + (!k0 * nr) in
      let cjb = co + (jb * nr) in
      for ib = 0 to nib - 1 do
        let vb = vo + (ib * k * mr) + (!k0 * mr) in
        kern vp vb up ub kn c (cjb + (ib * mr * cstride)) cstride
      done
    done;
    k0 := !k0 + kn
  done

let gemm_i32 ~mr ~nr ~kc ~rows_p ~cols_p ~k ~(vp : int array) ~vo
    ~(up : int array) ~uo ~(c : int array) ~co ~cstride =
  let kern =
    match (mr, nr) with
    | 4, 4 -> ki_4x4
    | 3, 4 -> ki_3x4
    | 2, 4 -> ki_2x4
    | 1, 4 -> ki_1x4
    | 4, 8 -> ki_4x8
    | 3, 8 -> ki_3x8
    | 2, 8 -> ki_2x8
    | 1, 8 -> ki_1x8
    | _ -> ki_gen ~mr ~nr
  in
  let nib = rows_p / mr and njb = cols_p / nr in
  let k0 = ref 0 in
  while !k0 < k do
    let kn = min kc (k - !k0) in
    for jb = 0 to njb - 1 do
      let ub = uo + (jb * k * nr) + (!k0 * nr) in
      let cjb = co + (jb * nr) in
      for ib = 0 to nib - 1 do
        let vb = vo + (ib * k * mr) + (!k0 * mr) in
        kern vp vb up ub kn c (cjb + (ib * mr * cstride)) cstride
      done
    done;
    k0 := !k0 + kn
  done

(* -------------------------------------------------- compressed panels *)

(* Block-compressed weight panels for pruned taps.  The natural block
   shape over the packed layout would be [KC × NR], but measured zero
   structure of magnitude-pruned tap panels kills that idea: pruning is
   unstructured, so the probability that a whole block is zero is
   (1-d)^(block size) — at density 0.3 a [KC × NR] block is never zero
   and even a single [1 × NR] row is zero only ~25% of the time (~1.3x
   ceiling).  A single *column* entry, by contrast, is zero with
   probability 1-d, so the degenerate 1×1 block — compressed sparse
   columns over the packed panel — is the only granularity that reaches
   the >= 1.5x regime at d = 0.3.  [sparse] therefore stores, per output
   column, the ascending list of nonzero k rows (indices and values
   compacted side by side); the MR-specialized kernels below keep the A
   panel L1-resident across columns and stream the compacted pairs.

   Bit-identity: the products are integers, each skipped entry
   contributes an exact 0, and per C element the remaining products are
   added in ascending-k order — the same fold as the dense driver, so
   sparse and dense results are bit-identical on identical weights. *)

type sparse = {
  sp_k : int;  (* logical panel depth (Cin) *)
  sp_cols : int;  (* packed column count (Cout rounded up to NR) *)
  sp_off : int array;  (* [cols+1] CSC offsets into idx/val *)
  sp_idx : int array;  (* nonzero k rows, ascending per column *)
  sp_val : int array;  (* matching weight values *)
}

(* [compress_panel ~nr ~k ~cols up ~uo] reads one tap's NR-packed B
   panel (column j = jb·NR + jr at [uo + (jb·k + kk)·NR + jr]) and
   builds its compressed form.  Padded columns are all-zero by the
   packing contract and come out empty. *)
let compress_panel ~nr ~k ~cols (up : int array) ~uo =
  let off = Array.make (cols + 1) 0 in
  let nnz = ref 0 in
  for j = 0 to cols - 1 do
    let jb = j / nr and jr = j mod nr in
    let base = uo + (jb * k * nr) + jr in
    let cnt = ref 0 in
    for kk = 0 to k - 1 do
      if up.(base + (kk * nr)) <> 0 then incr cnt
    done;
    nnz := !nnz + !cnt;
    off.(j + 1) <- !nnz
  done;
  let idx = Array.make (max 1 !nnz) 0 and vals = Array.make (max 1 !nnz) 0 in
  let pos = ref 0 in
  for j = 0 to cols - 1 do
    let jb = j / nr and jr = j mod nr in
    let base = uo + (jb * k * nr) + jr in
    for kk = 0 to k - 1 do
      let w = up.(base + (kk * nr)) in
      if w <> 0 then begin
        idx.(!pos) <- kk;
        vals.(!pos) <- w;
        incr pos
      end
    done
  done;
  { sp_k = k; sp_cols = cols; sp_off = off; sp_idx = idx; sp_val = vals }

let sparse_nnz sp = sp.sp_off.(sp.sp_cols)

(* ------------------------------------------------------ sparse kernels *)

(* [ks_MR v vo idx vals i0 i1 c o0 cs]: MR×1 compressed-column update.
   Entries [i0, i1) of the compacted arrays belong to one output column;
   [vo] points at k = 0 of the A panel slice (stride MR per k), [o0] at
   the column's top C element, [cs] is C's row stride. *)

let ks_4 (v : int array) vo (idx : int array) (vals : int array) i0 i1
    (c : int array) o0 cs =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let o3 = o2 + cs in
  let c0 = ref (Array.unsafe_get c o0)
  and c1 = ref (Array.unsafe_get c o1)
  and c2 = ref (Array.unsafe_get c o2)
  and c3 = ref (Array.unsafe_get c o3) in
  for i = i0 to i1 - 1 do
    let a = vo + (Array.unsafe_get idx i * 4) in
    let b = Array.unsafe_get vals i in
    c0 := !c0 + (Array.unsafe_get v a * b);
    c1 := !c1 + (Array.unsafe_get v (a + 1) * b);
    c2 := !c2 + (Array.unsafe_get v (a + 2) * b);
    c3 := !c3 + (Array.unsafe_get v (a + 3) * b)
  done;
  Array.unsafe_set c o0 !c0;
  Array.unsafe_set c o1 !c1;
  Array.unsafe_set c o2 !c2;
  Array.unsafe_set c o3 !c3

let ks_3 (v : int array) vo (idx : int array) (vals : int array) i0 i1
    (c : int array) o0 cs =
  let o1 = o0 + cs in
  let o2 = o1 + cs in
  let c0 = ref (Array.unsafe_get c o0)
  and c1 = ref (Array.unsafe_get c o1)
  and c2 = ref (Array.unsafe_get c o2) in
  for i = i0 to i1 - 1 do
    let a = vo + (Array.unsafe_get idx i * 3) in
    let b = Array.unsafe_get vals i in
    c0 := !c0 + (Array.unsafe_get v a * b);
    c1 := !c1 + (Array.unsafe_get v (a + 1) * b);
    c2 := !c2 + (Array.unsafe_get v (a + 2) * b)
  done;
  Array.unsafe_set c o0 !c0;
  Array.unsafe_set c o1 !c1;
  Array.unsafe_set c o2 !c2

let ks_2 (v : int array) vo (idx : int array) (vals : int array) i0 i1
    (c : int array) o0 cs =
  let o1 = o0 + cs in
  let c0 = ref (Array.unsafe_get c o0) and c1 = ref (Array.unsafe_get c o1) in
  for i = i0 to i1 - 1 do
    let a = vo + (Array.unsafe_get idx i * 2) in
    let b = Array.unsafe_get vals i in
    c0 := !c0 + (Array.unsafe_get v a * b);
    c1 := !c1 + (Array.unsafe_get v (a + 1) * b)
  done;
  Array.unsafe_set c o0 !c0;
  Array.unsafe_set c o1 !c1

let ks_1 (v : int array) vo (idx : int array) (vals : int array) i0 i1
    (c : int array) o0 _cs =
  let c0 = ref (Array.unsafe_get c o0) in
  for i = i0 to i1 - 1 do
    c0 :=
      !c0 + (Array.unsafe_get v (vo + Array.unsafe_get idx i) * Array.unsafe_get vals i)
  done;
  Array.unsafe_set c o0 !c0

let ks_gen ~mr (v : int array) vo (idx : int array) (vals : int array) i0 i1
    (c : int array) o0 cs =
  for i = i0 to i1 - 1 do
    let a = vo + (Array.unsafe_get idx i * mr) in
    let b = Array.unsafe_get vals i in
    for r = 0 to mr - 1 do
      Array.unsafe_set c (o0 + (r * cs))
        (Array.unsafe_get c (o0 + (r * cs)) + (Array.unsafe_get v (a + r) * b))
    done
  done

(* [gemm_i32_sparse] updates the [rows_p × sp.sp_cols] block of C in
   place with A·B over the packed A panels and the compressed B panel.
   The A panel of each row block (k·MR ints) stays L1-resident while
   every column's compacted run streams past it; empty columns cost one
   offset compare.  No KC blocking — the compacted pairs are visited
   once per row block in ascending-k order, preserving the dense fold. *)
let gemm_i32_sparse ~mr ~rows_p ~(sp : sparse) ~(vp : int array) ~vo
    ~(c : int array) ~co ~cstride =
  let kern =
    match mr with 4 -> ks_4 | 3 -> ks_3 | 2 -> ks_2 | 1 -> ks_1 | _ -> ks_gen ~mr
  in
  let nib = rows_p / mr in
  let k = sp.sp_k in
  let off = sp.sp_off and idx = sp.sp_idx and vals = sp.sp_val in
  for ib = 0 to nib - 1 do
    let vb = vo + (ib * k * mr) in
    let crow = co + (ib * mr * cstride) in
    for j = 0 to sp.sp_cols - 1 do
      let i0 = Array.unsafe_get off j and i1 = Array.unsafe_get off (j + 1) in
      if i1 > i0 then kern vp vb idx vals i0 i1 c (crow + j) cstride
    done
  done
