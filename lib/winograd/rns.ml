(* Residue-number-system integer Winograd backend.

   Structure mirrors [Kernels.conv2d_i32_exact] — NR-packed transformed
   weights, MR-packed scattered tiles, one packed [Microkernel.gemm_i32]
   per tap — except that every panel holds *residues*: the exact lifted
   transforms run once per tile/filter and are reduced into [0, p) for
   each modulus while being packed, the per-tap GEMMs run once per
   (tap, modulus) with lazy reduction (the plan proves Cin·p² fits), the
   output transform runs on residues with Aᵀ mod p, and the gather loop
   Garner-reconstructs the centered scaled output, divides the lift
   denominator off exactly, and applies the fused epilogue.  The
   full-range value exists only as one scalar per output pixel — never
   as a tensor.

   Soundness: all panel arithmetic is congruent mod p to the exact
   scaled sandwich Y = (Aᵀ_int · (Σ_ci V_int ⊙ U_int) · A_int), an
   integer equal to (β·γ·α)²·y by the Winograd identity.  The plan-time
   range proof guarantees Π pᵢ ≥ 2·|Y|+1, so CRT recovers Y exactly and
   the divide-off is exact — the backend is bit-identical to the direct
   integer convolution or it raises; it cannot be silently wrong. *)

module P = Twq_util.Parallel
module Rat = Twq_util.Rat
module Rmat = Twq_util.Rmat
module Modint = Twq_util.Modint
module Itensor = Twq_tensor.Itensor
module Shape = Twq_tensor.Shape

type error =
  | Bad_basis of string
  | Insufficient_range of { bound : int; required : int; product : int }
  | Lift_overflow of string
  | Accumulator_overflow of string
  | Out_of_range of string

exception Rns_error of error

let error_to_string = function
  | Bad_basis msg -> "bad basis: " ^ msg
  | Insufficient_range { bound; required; product } ->
      Printf.sprintf
        "insufficient basis range: worst-case |Y| = %d needs product >= %d \
         but basis product is %d"
        bound required product
  | Lift_overflow msg -> "lift overflow: " ^ msg
  | Accumulator_overflow msg -> "accumulator overflow: " ^ msg
  | Out_of_range msg -> "out of range: " ^ msg

let () =
  Printexc.register_printer (function
    | Rns_error e -> Some ("Rns.Rns_error: " ^ error_to_string e)
    | _ -> None)

type plan = {
  gen : Generator.t;
  tile_ : int;
  mout : int;
  rr : int;
  basis_ : int array;
  crt : Modint.Crt.t;
  scales : int * int * int; (* bt, g, at lift denominators *)
  denom_ : int;
  bound_ : int;
  required_ : int;
  cin_max : int;
  xmax : int;
  wmax : int;
  ker_int : int Kernels.kernel; (* exact lifted transforms *)
  out_k : int Kernels.kernel array; (* per modulus: transforms mod p *)
}

let default_basis = [ 251; 241; 239 ]

(* Everything an exact intermediate may reach must stay well under
   max_int; 2^61 leaves a 2x slack over the proven bounds. *)
let guard = 1 lsl 61

type analysis = {
  a_gen : Generator.t;
  bt_i : int array array;
  g_i : int array array;
  at_i : int array array;
  a_scales : int * int * int;
  a_denom : int;
  a_bound : int;
  a_required : int;
}

let max_row_l1 mat =
  Array.fold_left
    (fun acc row -> max acc (Array.fold_left (fun a c -> a + abs c) 0 row))
    0 mat

let analyze ?points ~m ~r ~cin ~xmax ~wmax () =
  let points =
    match points with
    | Some p -> p
    | None -> Generator.lavin_points (m + r - 2)
  in
  let gen = Generator.make ~points ~m ~r in
  match
    let bs, bt_i = Rmat.lift_common_denominator gen.Generator.bt in
    let gs, g_i = Rmat.lift_common_denominator gen.Generator.g in
    let ats, at_i = Rmat.lift_common_denominator gen.Generator.at in
    (bs, bt_i, gs, g_i, ats, at_i)
  with
  | exception Rmat.Lift_overflow msg -> Error (Lift_overflow msg)
  | bs, bt_i, gs, g_i, ats, at_i -> (
      match
        let total = Rat.checked_mul (Rat.checked_mul bs gs) ats in
        let denom = Rat.checked_mul total total in
        (* |y| ≤ cin·r²·xmax·wmax for the true convolution, so the scaled
           integer output is bounded by denom times that. *)
        let conv_bound =
          Rat.checked_mul
            (Rat.checked_mul cin (r * r))
            (Rat.checked_mul xmax wmax)
        in
        let bound = Rat.checked_mul denom conv_bound in
        let required = Rat.checked_add (Rat.checked_mul 2 bound) 1 in
        (* The exact lifted input/weight transforms run in native ints
           before reduction; bound them by the lifted row L1 norms. *)
        let bt_l1 = max_row_l1 bt_i and g_l1 = max_row_l1 g_i in
        let in_peak = Rat.checked_mul xmax (Rat.checked_mul bt_l1 bt_l1) in
        let w_peak = Rat.checked_mul wmax (Rat.checked_mul g_l1 g_l1) in
        (denom, bound, required, in_peak, w_peak)
      with
      | exception Rat.Overflow ->
          Error
            (Accumulator_overflow
               "worst-case scaled accumulator exceeds the native integer \
                range for this F(m,r)/cin/value-range configuration")
      | denom, bound, required, in_peak, w_peak ->
          if required > Modint.max_product then
            Error
              (Accumulator_overflow
                 (Printf.sprintf
                    "required basis product %d exceeds the %d \
                     reconstruction cap"
                    required Modint.max_product))
          else if in_peak > guard || w_peak > guard then
            Error
              (Accumulator_overflow
                 "exact lifted transform output exceeds the native \
                  integer range")
          else
            Ok
              {
                a_gen = gen;
                bt_i;
                g_i;
                at_i;
                a_scales = (bs, gs, ats);
                a_denom = denom;
                a_bound = bound;
                a_required = required;
              })

let plan ?points ~m ~r ~basis ~cin ?(xmax = 128) ?(wmax = 128) () =
  if cin < 1 then invalid_arg "Rns.plan: cin must be positive";
  if xmax < 1 || wmax < 1 then
    invalid_arg "Rns.plan: value ranges must be positive";
  match analyze ?points ~m ~r ~cin ~xmax ~wmax () with
  | Error e -> Error e
  | Ok a -> (
      let basis_ = Array.of_list basis in
      match Modint.Crt.make basis_ with
      | Error msg -> Error (Bad_basis msg)
      | Ok crt ->
          let product = Modint.Crt.product crt in
          if product < a.a_required then
            Error
              (Insufficient_range
                 {
                   bound = a.a_bound;
                   required = a.a_required;
                   product;
                 })
          else begin
            let pmax = Array.fold_left max 2 basis_ in
            if cin > guard / (pmax * pmax) then
              Error
                (Accumulator_overflow
                   (Printf.sprintf
                      "lazy per-modulus GEMM accumulator cin*p^2 \
                       overflows for cin = %d, p = %d"
                      cin pmax))
            else begin
              let red p = Array.map (Array.map (fun c -> Modint.reduce c p)) in
              let out_k =
                Array.map
                  (fun p ->
                    Kernels.i32_of_mats ~bt:(red p a.bt_i) ~g:(red p a.g_i)
                      ~at:(red p a.at_i))
                  basis_
              in
              Ok
                {
                  gen = a.a_gen;
                  tile_ = m + r - 1;
                  mout = m;
                  rr = r;
                  basis_;
                  crt;
                  scales = a.a_scales;
                  denom_ = a.a_denom;
                  bound_ = a.a_bound;
                  required_ = a.a_required;
                  cin_max = cin;
                  xmax;
                  wmax;
                  ker_int =
                    Kernels.i32_of_mats ~bt:a.bt_i ~g:a.g_i ~at:a.at_i;
                  out_k;
                }
            end
          end)

let plan_exn ?points ~m ~r ~basis ~cin ?xmax ?wmax () =
  match plan ?points ~m ~r ~basis ~cin ?xmax ?wmax () with
  | Ok p -> p
  | Error e -> raise (Rns_error e)

(* Fixed ladders: prefixes of descending 8-bit primes first (residues fit
   int8 datapaths), then of 13-bit primes for ranges 8-bit products can't
   reach. *)
let eight_bit_primes = [ 251; 241; 239; 233; 229; 227; 223 ]
let thirteen_bit_primes = [ 8191; 8179; 8171; 8167; 8161; 8147 ]

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let suggest_basis ?points ~m ~r ~cin ?(xmax = 128) ?(wmax = 128) () =
  match analyze ?points ~m ~r ~cin ~xmax ~wmax () with
  | Error e -> Error e
  | Ok a ->
      let candidates =
        List.concat_map
          (fun pool ->
            List.init
              (List.length pool - 1)
              (fun i -> take (i + 2) pool))
          [ eight_bit_primes; thirteen_bit_primes ]
      in
      let fits basis =
        match Modint.Crt.make (Array.of_list basis) with
        | Error _ -> false
        | Ok crt -> Modint.Crt.product crt >= a.a_required
      in
      (match List.find_opt fits candidates with
      | Some basis -> Ok basis
      | None ->
          Error
            (Insufficient_range
               {
                 bound = a.a_bound;
                 required = a.a_required;
                 product =
                   (match
                      Modint.Crt.make
                        (Array.of_list
                           (take Modint.max_moduli thirteen_bit_primes))
                    with
                   | Ok crt -> Modint.Crt.product crt
                   | Error _ -> 0);
               }))

let m p = p.mout
let r p = p.rr
let tile p = p.tile_
let basis p = Array.copy p.basis_
let denom p = p.denom_
let bound p = p.bound_
let required p = p.required_
let product p = Modint.Crt.product p.crt

let describe p =
  let bs, gs, ats = p.scales in
  let prod = product p in
  Printf.sprintf
    "F(%d,%d) RNS plan: tile %dx%d, lift scales bt=%d g=%d at=%d (denom \
     %d), basis [%s] (%d moduli, product %d), |Y| bound %d, required %d, \
     margin x%.2f, proven for cin<=%d |x|<=%d |w|<=%d"
    p.mout p.rr p.tile_ p.tile_ bs gs ats p.denom_
    (String.concat "; " (Array.to_list (Array.map string_of_int p.basis_)))
    (Array.length p.basis_) prod p.bound_ p.required_
    (float_of_int prod /. float_of_int p.required_)
    p.cin_max p.xmax p.wmax

(* ---------- per-modulus tap-major driver ---------- *)

(* One arena per logically distinct buffer, as in Kernels. *)
let ra_tile = P.Scratch.create_int ()
let ra_xt = P.Scratch.create_int ()
let ra_tmp = P.Scratch.create_int ()
let ra_v = P.Scratch.create_int ()
let ra_mo = P.Scratch.create_int ()
let ra_yw = P.Scratch.create_int ()
let ra_yo = P.Scratch.create_int ()
let ra_u = P.Scratch.create_int ()
let ra_res = P.Scratch.create_int ()
let ra_dig = P.Scratch.create_int ()

let check_range name data limit =
  let n = Array.length data in
  let bad = ref (-1) in
  for i = 0 to n - 1 do
    if !bad < 0 && abs data.(i) > limit then bad := i
  done;
  if !bad >= 0 then
    raise
      (Rns_error
         (Out_of_range
            (Printf.sprintf
               "Rns.conv2d: %s value %d at flat index %d exceeds the \
                planned |%s| <= %d"
               name
               data.(!bad)
               !bad name limit)))

let conv2d p ?(epilogue = Kernels.no_epilogue) ?out ?(pad = 0) ~x ~w () =
  let n = Itensor.dim x 0 and cin = Itensor.dim x 1 in
  let h = Itensor.dim x 2 and wd = Itensor.dim x 3 in
  let cout = Itensor.dim w 0 in
  let t = p.tile_ and m = p.mout in
  let r = p.rr in
  if Itensor.dim w 1 <> cin then
    invalid_arg "Rns.conv2d: channel mismatch";
  if Itensor.dim w 2 <> r || Itensor.dim w 3 <> r then
    invalid_arg "Rns.conv2d: kernel size mismatch";
  if cin > p.cin_max then
    raise
      (Rns_error
         (Out_of_range
            (Printf.sprintf
               "Rns.conv2d: %d input channels but the range proof covers \
                only %d"
               cin p.cin_max)));
  check_range "x" x.Itensor.data p.xmax;
  check_range "w" w.Itensor.data p.wmax;
  let ho, wo = Shape.conv2d_out ~h ~w:wd ~kh:r ~kw:r ~stride:1 ~pad in
  let tt = t * t in
  let out =
    match out with
    | None -> Itensor.zeros [| n; cout; ho; wo |]
    | Some o ->
        if
          Itensor.dim o 0 <> n || Itensor.dim o 1 <> cout
          || Itensor.dim o 2 <> ho || Itensor.dim o 3 <> wo
        then invalid_arg "Rns.conv2d: out shape mismatch";
        o
  in
  let od = out.Itensor.data and xd = x.Itensor.data in
  let basis = p.basis_ and nmod = Array.length p.basis_ in
  let denom = p.denom_ in
  let { Microkernel.mr; nr; kc } = Microkernel.config () in
  let cout_p = Microkernel.round_up cout nr in
  let ucincp = cin * cout_p in
  (* Transformed weights: exact lifted transform once per (co, ci), then
     residues NR-packed per modulus — u.((q·tt + tap)·ucincp + base). *)
  let u = P.Scratch.borrow ra_u (nmod * tt * ucincp) in
  P.parallel_for ~lo:0 ~hi:(cout * cin) (fun idx ->
      let co = idx / cin and ci = idx mod cin in
      let f = P.Scratch.borrow ra_tile (r * r) in
      let wt = P.Scratch.borrow ra_xt tt in
      let tmp = P.Scratch.borrow ra_tmp (t * r) in
      Array.blit w.Itensor.data (((co * cin) + ci) * r * r) f 0 (r * r);
      p.ker_int.Kernels.weight f 0 wt 0 tmp;
      let jb = co / nr and jr = co mod nr in
      let base = (((jb * cin) + ci) * nr) + jr in
      for q = 0 to nmod - 1 do
        let pq = basis.(q) in
        for tap = 0 to tt - 1 do
          u.((((q * tt) + tap) * ucincp) + base) <- Modint.reduce wt.(tap) pq
        done
      done);
  (* Zero pad lanes (zero is a valid residue in every modulus). *)
  if cout_p > cout then
    for co = cout to cout_p - 1 do
      let jb = co / nr and jr = co mod nr in
      for ci = 0 to cin - 1 do
        let base = (((jb * cin) + ci) * nr) + jr in
        for qt = 0 to (nmod * tt) - 1 do
          u.((qt * ucincp) + base) <- 0
        done
      done
    done;
  let n_th = (ho + m - 1) / m and n_tw = (wo + m - 1) / m in
  let tiles_per_img = n_th * n_tw in
  let total = n * tiles_per_img in
  let tb = Microkernel.round_up (Kernels.block_of ~total) mr in
  let tbcin = tb * cin in
  let nblocks = (total + tb - 1) / tb in
  P.parallel_for ~chunk:1 ~lo:0 ~hi:nblocks (fun blk ->
      let b0 = blk * tb in
      let bs = min tb (total - b0) in
      let bs_p = Microkernel.round_up bs mr in
      let tile = P.Scratch.borrow ra_tile tt in
      let xt = P.Scratch.borrow ra_xt tt in
      let tmp = P.Scratch.borrow ra_tmp tt in
      let v = P.Scratch.borrow ra_v (nmod * tt * tbcin) in
      let mo = P.Scratch.borrow ra_mo (nmod * tt * tb * cout_p) in
      let yw = P.Scratch.borrow ra_yw tt in
      let yo = P.Scratch.borrow ra_yo (nmod * m * m) in
      let res = P.Scratch.borrow ra_res nmod in
      let dig = P.Scratch.borrow ra_dig nmod in
      (* Scatter: exact lifted input transform once per (tile, ci), taps
         reduced into the per-(modulus, tap) MR-packed panels. *)
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          Kernels.load_tile_i xd ~h ~w:wd
            ~base:(((ni * cin) + ci) * h * wd)
            ~pad ~h0:(th * m) ~w0:(tw * m) ~t tile;
          p.ker_int.Kernels.input tile 0 xt 0 tmp;
          let vbase = (((ib * cin) + ci) * mr) + ir in
          for q = 0 to nmod - 1 do
            let pq = basis.(q) in
            for tap = 0 to tt - 1 do
              v.((((q * tt) + tap) * tbcin) + vbase) <-
                Modint.reduce xt.(tap) pq
            done
          done
        done
      done;
      (* Zero the pad rows of a trailing partial block. *)
      for bidx = bs to bs_p - 1 do
        let ib = bidx / mr and ir = bidx mod mr in
        for ci = 0 to cin - 1 do
          let vbase = (((ib * cin) + ci) * mr) + ir in
          for qt = 0 to (nmod * tt) - 1 do
            v.((qt * tbcin) + vbase) <- 0
          done
        done
      done;
      Array.fill mo 0 (nmod * tt * tb * cout_p) 0;
      (* One packed GEMM per (modulus, tap); residues accumulate lazily
         (the plan proved cin·p² fits a native int). *)
      for qt = 0 to (nmod * tt) - 1 do
        Microkernel.gemm_i32 ~mr ~nr ~kc ~rows_p:bs_p ~cols_p:cout_p ~k:cin
          ~vp:v ~vo:(qt * tbcin) ~up:u ~uo:(qt * ucincp) ~c:mo
          ~co:(qt * tb * cout_p) ~cstride:cout_p
      done;
      (* Gather: per-modulus output transform on residues, then one CRT
         reconstruction + denominator divide-off per output pixel, fused
         with the epilogue. *)
      let mm = m * m in
      for bidx = 0 to bs - 1 do
        let tidx = b0 + bidx in
        let ni = tidx / tiles_per_img in
        let rest = tidx mod tiles_per_img in
        let th = rest / n_tw and tw = rest mod n_tw in
        let h0 = th * m and w0 = tw * m in
        let rh = min m (ho - h0) and rw = min m (wo - w0) in
        for co = 0 to cout - 1 do
          for q = 0 to nmod - 1 do
            let pq = basis.(q) in
            for tap = 0 to tt - 1 do
              yw.(tap) <-
                mo.(((((q * tt) + tap) * tb) + bidx) * cout_p + co) mod pq
            done;
            p.out_k.(q).Kernels.output yw 0 yo (q * mm) tmp
          done;
          for dy = 0 to rh - 1 do
            let orow = (((((ni * cout) + co) * ho) + h0 + dy) * wo) + w0 in
            let yrow = dy * m in
            for dx = 0 to rw - 1 do
              for q = 0 to nmod - 1 do
                res.(q) <- yo.((q * mm) + yrow + dx) mod basis.(q)
              done;
              let raw = Modint.Crt.reconstruct p.crt ~digits:dig res in
              (* The Winograd identity guarantees Y = denom·y exactly;
                 assert rather than truncate. *)
              assert (raw mod denom = 0);
              Kernels.epilogue_store epilogue od (orow + dx) (raw / denom)
            done
          done
        done
      done);
  out
