open Twq_util
module Tensor = Twq_tensor.Tensor
module Itensor = Twq_tensor.Itensor
module Ops = Twq_tensor.Ops

type variant = F2 | F4 | F6

let all_variants = [ F2; F4; F6 ]
let name = function F2 -> "F2" | F4 -> "F4" | F6 -> "F6"
let m = function F2 -> 2 | F4 -> 4 | F6 -> 6
let t v = m v + 2
let r _ = 3

let macs_reduction v =
  let m = float_of_int (m v) in
  m *. m *. 9.0 /. ((m +. 2.0) *. (m +. 2.0))

(* F(2x2, 3x3): root points {0, 1, -1}. *)
let bt_f2 = Rmat.of_ints
    [| [| 1; 0; -1; 0 |];
       [| 0; 1; 1; 0 |];
       [| 0; -1; 1; 0 |];
       [| 0; 1; 0; -1 |] |]

let g_f2 =
  let h = Rat.make 1 2 in
  let e n = Rat.mul h (Rat.of_int n) in
  [| [| e 2; e 0; e 0 |];
     [| e 1; e 1; e 1 |];
     [| e 1; e (-1); e 1 |];
     [| e 0; e 0; e 2 |] |]

let at_f2 = Rmat.of_ints
    [| [| 1; 1; 1; 0 |];
       [| 0; 1; -1; -1 |] |]

(* F(4x4, 3x3): Lavin root points {0, 1, -1, 2, -2}.  These are the B^T and
   A^T printed in Sec. II of the paper. *)
let bt_f4 = Rmat.of_ints
    [| [| 4; 0; -5; 0; 1; 0 |];
       [| 0; -4; -4; 1; 1; 0 |];
       [| 0; 4; -4; -1; 1; 0 |];
       [| 0; -2; -1; 2; 1; 0 |];
       [| 0; 2; -1; -2; 1; 0 |];
       [| 0; 4; 0; -5; 0; 1 |] |]

let g_f4 =
  let q n d = Rat.make n d in
  [| [| q 1 4; q 0 1; q 0 1 |];
     [| q (-1) 6; q (-1) 6; q (-1) 6 |];
     [| q (-1) 6; q 1 6; q (-1) 6 |];
     [| q 1 24; q 1 12; q 1 6 |];
     [| q 1 24; q (-1) 12; q 1 6 |];
     [| q 0 1; q 0 1; q 1 1 |] |]

let at_f4 = Rmat.of_ints
    [| [| 1; 1; 1; 1; 1; 0 |];
       [| 0; 1; -1; 2; -2; 0 |];
       [| 0; 1; 1; 4; 4; 0 |];
       [| 0; 1; -1; 8; -8; 1 |] |]

(* F(6x6, 3x3): root points {0, 1, -1, 2, -2, 1/2, -1/2} — the standard
   larger-tile instance (wincnn / cuDNN).  Bᵀ and Aᵀ are no longer
   integral, which is exactly the "higher sensitivity / more complex
   transforms" regime the paper's Sec. II warns about. *)
let bt_f6 =
  let q n d = Rat.make n d in
  [| [| q 1 1; q 0 1; q (-21) 4; q 0 1; q 21 4; q 0 1; q (-1) 1; q 0 1 |];
     [| q 0 1; q 1 1; q 1 1; q (-17) 4; q (-17) 4; q 1 1; q 1 1; q 0 1 |];
     [| q 0 1; q (-1) 1; q 1 1; q 17 4; q (-17) 4; q (-1) 1; q 1 1; q 0 1 |];
     [| q 0 1; q 1 2; q 1 4; q (-5) 2; q (-5) 4; q 2 1; q 1 1; q 0 1 |];
     [| q 0 1; q (-1) 2; q 1 4; q 5 2; q (-5) 4; q (-2) 1; q 1 1; q 0 1 |];
     [| q 0 1; q 2 1; q 4 1; q (-5) 2; q (-5) 1; q 1 2; q 1 1; q 0 1 |];
     [| q 0 1; q (-2) 1; q 4 1; q 5 2; q (-5) 1; q (-1) 2; q 1 1; q 0 1 |];
     [| q 0 1; q (-1) 1; q 0 1; q 21 4; q 0 1; q (-21) 4; q 0 1; q 1 1 |] |]

let g_f6 =
  let q n d = Rat.make n d in
  [| [| q 1 1; q 0 1; q 0 1 |];
     [| q (-2) 9; q (-2) 9; q (-2) 9 |];
     [| q (-2) 9; q 2 9; q (-2) 9 |];
     [| q 1 90; q 1 45; q 2 45 |];
     [| q 1 90; q (-1) 45; q 2 45 |];
     [| q 32 45; q 16 45; q 8 45 |];
     [| q 32 45; q (-16) 45; q 8 45 |];
     [| q 0 1; q 0 1; q 1 1 |] |]

let at_f6 =
  let q n d = Rat.make n d in
  [| [| q 1 1; q 1 1; q 1 1; q 1 1; q 1 1; q 1 1; q 1 1; q 0 1 |];
     [| q 0 1; q 1 1; q (-1) 1; q 2 1; q (-2) 1; q 1 2; q (-1) 2; q 0 1 |];
     [| q 0 1; q 1 1; q 1 1; q 4 1; q 4 1; q 1 4; q 1 4; q 0 1 |];
     [| q 0 1; q 1 1; q (-1) 1; q 8 1; q (-8) 1; q 1 8; q (-1) 8; q 0 1 |];
     [| q 0 1; q 1 1; q 1 1; q 16 1; q 16 1; q 1 16; q 1 16; q 0 1 |];
     [| q 0 1; q 1 1; q (-1) 1; q 32 1; q (-32) 1; q 1 32; q (-1) 32; q 1 1 |] |]

let bt_rat = function F2 -> bt_f2 | F4 -> bt_f4 | F6 -> bt_f6
let g_rat = function F2 -> g_f2 | F4 -> g_f4 | F6 -> g_f6
let at_rat = function F2 -> at_f2 | F4 -> at_f4 | F6 -> at_f6

let g_scale = function F2 -> 2 | F4 -> 24 | F6 -> 90

(* Smallest integers making Bᵀ / Aᵀ integral (1 for F2/F4). *)
let bt_scale = function F2 | F4 -> 1 | F6 -> 4
let at_scale = function F2 | F4 -> 1 | F6 -> 32

let g_scaled_int v =
  let s = Rat.of_int (g_scale v) in
  Array.map (Array.map (fun x -> Rat.to_int_exn (Rat.mul s x))) (g_rat v)

let tensor_of_rmat m =
  let rows = Rmat.rows m and cols = Rmat.cols m in
  Tensor.init [| rows; cols |] (fun idx -> Rat.to_float m.(idx.(0)).(idx.(1)))

let bt v = tensor_of_rmat (bt_rat v)
let g v = tensor_of_rmat (g_rat v)
let at v = tensor_of_rmat (at_rat v)

(* T^T-sandwich helpers.  The float matrices are computed eagerly for all
   three variants at module init — a lazily-filled Hashtbl here would be
   mutated concurrently from the domain pool (data race). *)
let precompute f =
  let f2 = f F2 and f4 = f F4 and f6 = f F6 in
  function F2 -> f2 | F4 -> f4 | F6 -> f6

let bt_m = precompute bt
let g_m = precompute g
let at_m = precompute at
let b_m = precompute (fun v -> Ops.transpose (bt v))
let gt_m = precompute (fun v -> Ops.transpose (g v))
let a_m = precompute (fun v -> Ops.transpose (at v))

let input_tile v x = Ops.matmul (Ops.matmul (bt_m v) x) (b_m v)
let weight_tile v f = Ops.matmul (Ops.matmul (g_m v) f) (gt_m v)
let output_tile v y = Ops.matmul (Ops.matmul (at_m v) y) (a_m v)

let scaled_imat scale m =
  let k = Rat.of_int scale in
  Array.map (Array.map (fun x -> Rat.to_int_exn (Rat.mul k x))) m

let int_sandwich (tm : int array array) (x : Itensor.t) =
  (* t_m · x · t_mᵀ on integer tiles. *)
  let rows = Array.length tm and inner = Array.length tm.(0) in
  let tmp = Itensor.zeros [| rows; Itensor.dim x 1 |] in
  for i = 0 to rows - 1 do
    for j = 0 to Itensor.dim x 1 - 1 do
      let acc = ref 0 in
      for k = 0 to inner - 1 do
        acc := !acc + (tm.(i).(k) * Itensor.get2 x k j)
      done;
      Itensor.set2 tmp i j !acc
    done
  done;
  let out = Itensor.zeros [| rows; rows |] in
  for i = 0 to rows - 1 do
    for j = 0 to rows - 1 do
      let acc = ref 0 in
      for k = 0 to inner - 1 do
        acc := !acc + (Itensor.get2 tmp i k * tm.(j).(k))
      done;
      Itensor.set2 out i j !acc
    done
  done;
  out

let input_tile_int v x = int_sandwich (scaled_imat (bt_scale v) (bt_rat v)) x
let weight_tile_int_scaled v f = int_sandwich (g_scaled_int v) f
let output_tile_int v y = int_sandwich (scaled_imat (at_scale v) (at_rat v)) y

(* Worst-case bit growth of the sandwich t·x·tᵀ when every element of x is a
   signed [bits]-bit integer: tap (i,j) = Σ_{k,l} t[i][k]·t[j][l]·x[k][l];
   propagate intervals coefficient by coefficient. *)
let sandwich_bits (tm : int array array) ~bits =
  let input = Interval.of_signed_bits bits in
  let rows = Array.length tm and inner = Array.length tm.(0) in
  let worst = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to rows - 1 do
      let acc = ref (Interval.point 0) in
      for k = 0 to inner - 1 do
        for l = 0 to inner - 1 do
          let c = tm.(i).(k) * tm.(j).(l) in
          if c <> 0 then acc := Interval.add !acc (Interval.mul_const c input)
        done
      done;
      worst := Stdlib.max !worst (Interval.signed_bits !acc)
    done
  done;
  !worst

let extra_bits_input v =
  sandwich_bits (scaled_imat (bt_scale v) (bt_rat v)) ~bits:8 - 8

let extra_bits_weight v = sandwich_bits (g_scaled_int v) ~bits:8 - 8

let extra_bits_output v =
  sandwich_bits (scaled_imat (at_scale v) (at_rat v)) ~bits:8 - 8
