(** Residue-number-system integer Winograd backend — exact big-tile
    convolution via per-modulus GEMMs and fused CRT reconstruction.

    The paper's tap-wise scales exist because the integer Winograd
    dynamic range explodes beyond F(4,3): the scaled F(6,3) sandwich
    needs ~2× the accumulator bits of F4.  Following Liu & Mattina
    ("Efficient Residue Number System Based Winograd Convolution"), this
    backend sidesteps the blowup by computing the *entire* scaled integer
    sandwich independently in each modulus of a small pairwise-coprime
    basis — residues fit int8/int16, so the PR-7 packed
    {!Microkernel.gemm_i32} path applies unchanged — and recovering the
    exact result once per output pixel by Chinese-remainder
    reconstruction, fused with the denominator divide-off into the
    output-scatter epilogue.  No full-range intermediate tensor ever
    materializes.

    Pipeline, per modulus [p]:
    + the rational [Bᵀ]/[G]/[Aᵀ] of a generated [F(m,r)] are lifted to
      integers by their common denominators ([β], [γ], [α] — reusing
      {!Twq_util.Rmat.lift_common_denominator});
    + input/weight tiles go through the exact lifted transforms once and
      are reduced mod [p] while being packed into the per-tap
      MR/NR panels;
    + one [\[tiles×Cin\]·\[Cin×Cout\]] GEMM per (tap, modulus) accumulates
      lazily (no reduction in the inner loop — the plan proves
      [Cin·p² < max_int]);
    + the output transform runs on residues with [Aᵀ mod p];
    + the gather loop CRT-reconstructs the centered scaled output
      [Y = (β·γ·α)²·y], asserts exact divisibility, divides the
      denominator off, and applies the fused {!Kernels.epilogue}.

    A plan is only constructed after a range proof: the basis product
    must exceed twice the worst-case |Y| bound computed from the lifted
    scales, [Cin], and the declared value ranges — otherwise construction
    fails with a typed {!error}.  Given the proof, the backend is exact:
    {!conv2d} is bit-identical to the direct integer convolution (and to
    {!Kernels.conv2d_i32_exact_ref}) or it raises; it never silently
    truncates. *)

type error =
  | Bad_basis of string
      (** Malformed basis: empty, too many moduli, a modulus outside the
          supported range, a non-coprime pair, or a product beyond the
          native-int reconstruction cap. *)
  | Insufficient_range of { bound : int; required : int; product : int }
      (** The range proof failed: the worst-case scaled accumulator
          magnitude is [bound], so the basis product must be at least
          [required = 2·bound + 1], but it is only [product]. *)
  | Lift_overflow of string
      (** The common-denominator lift of a transform matrix overflows
          native ints (message names the entry). *)
  | Accumulator_overflow of string
      (** Some exact intermediate (lifted transform output, GEMM
          accumulator, or the scaled output bound itself) cannot be
          proven to fit a native int for the requested configuration. *)
  | Out_of_range of string
      (** Runtime violation of the planned contract: an input/weight
          value outside the declared range, or more input channels than
          the plan was proven for. *)

exception Rns_error of error

val error_to_string : error -> string

type plan

val default_basis : int list
(** [\[251; 241; 239\]] — Liu & Mattina's 8-bit prime basis.  Enough for
    F(4,3)-class ranges; F(6,3) at full int8 needs a wider basis (see
    {!suggest_basis}). *)

val plan :
  ?points:Twq_util.Rat.t list ->
  m:int ->
  r:int ->
  basis:int list ->
  cin:int ->
  ?xmax:int ->
  ?wmax:int ->
  unit ->
  (plan, error) result
(** Synthesize [F(m,r)] (Lavin points by default, like {!Gconv.create}),
    lift its matrices, and validate [basis] against the worst-case range
    for up to [cin] input channels with inputs in [\[-xmax, xmax\]] and
    weights in [\[-wmax, wmax\]] (both default 128, covering int8).
    @raise Invalid_argument only for the same malformed [F(m,r)]
    requests {!Generator.make} rejects; every basis/range failure is a
    typed [Error]. *)

val plan_exn :
  ?points:Twq_util.Rat.t list ->
  m:int ->
  r:int ->
  basis:int list ->
  cin:int ->
  ?xmax:int ->
  ?wmax:int ->
  unit ->
  plan
(** {!plan}, raising {!Rns_error} on rejection. *)

val suggest_basis :
  ?points:Twq_util.Rat.t list ->
  m:int ->
  r:int ->
  cin:int ->
  ?xmax:int ->
  ?wmax:int ->
  unit ->
  (int list, error) result
(** Smallest basis from fixed ladders of descending 8-bit primes
    (251, 241, 239, …) then 13-bit primes (8191, 8179, …) whose product
    passes the range proof for the given configuration.  8-bit moduli are
    preferred so residues fit int8 datapaths. *)

val m : plan -> int
val r : plan -> int

val tile : plan -> int
(** [m + r - 1]. *)

val basis : plan -> int array
val denom : plan -> int
(** [(β·γ·α)²] — divided off exactly in the epilogue. *)

val bound : plan -> int
(** Proven worst-case [|Y|] of the scaled integer output. *)

val required : plan -> int
(** [2·bound + 1] — the minimum admissible basis product. *)

val product : plan -> int

val describe : plan -> string
(** Human-readable plan report: tile size, lift scales, basis, range
    proof margin — what the [twq rns] CLI prints. *)

val conv2d :
  plan ->
  ?epilogue:Kernels.epilogue ->
  ?out:Twq_tensor.Itensor.t ->
  ?pad:int ->
  x:Twq_tensor.Itensor.t ->
  w:Twq_tensor.Itensor.t ->
  unit ->
  Twq_tensor.Itensor.t
(** Exact integer Winograd convolution (stride 1) of NCHW [x] against
    [\[cout; cin; r; r\]] weights through the per-modulus tap-major
    engine.  Bit-identical to the direct integer convolution.  Shape
    errors raise [Invalid_argument] (as the other drivers); a value or
    channel count outside the plan's proven range raises
    {!Rns_error}[ (Out_of_range _)].  [epilogue]/[out] behave as in
    {!Kernels.conv2d_i32_exact}. *)
